// Package policy implements the scheduling policies SiloD evaluates
// (§5, §7): FIFO, multi-resource SJF (Tetris/Tiresias style, Eq. 6/7)
// and Gavel max-min fairness (Eq. 8/9) — each in a vanilla,
// storage-oblivious form and a SiloD-enhanced form that jointly
// allocates GPUs, cache and remote IO — plus the storage allocators of
// the baseline cache systems (Alluxio/LRU, CoorDL, Quiver) and SiloD's
// greedy policy (Algorithm 2).
package policy

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/unit"
)

// storageJob is one job in the max-min storage program: a job that has
// already been granted GPUs and now competes for cache and remote IO.
type storageJob struct {
	view core.JobView
	// perfEqual is SiloDPerf under the equal division R_equal (Eq. 8's
	// denominator), in bytes/s.
	perfEqual float64
}

// StorageAlloc is the result of the max-min storage program for one job.
type StorageAlloc struct {
	Cache    unit.Bytes     // allocated to the job's dataset (shared datasets merged by caller)
	RemoteIO unit.Bandwidth // allocated to the job
	Perf     unit.Bandwidth // resulting SiloDPerf
}

// MaxMinStorage solves the storage part of Eq. 9 exactly: maximize the
// minimum normalized performance min_j SiloDPerf(j, R_j)/SiloDPerf(j,
// R_equal) subject to Σ cache <= totalCache and Σ remoteIO <= totalIO,
// then progressively fills: jobs whose performance saturates at f* are
// frozen at their minimal allocation and the remaining resources are
// re-maximized over the rest, and any final slack is spent by cache
// efficiency. Datasets shared by several jobs are charged once and the
// merged demand is considered jointly (§6).
//
// The inner feasibility test exploits the closed form (Eq. 4): to give
// job j throughput t with cache c it needs remote IO t·(1-c/d), so a
// byte of cache on dataset D saves Σ_{j∈D} t_j/d bytes/s of bandwidth —
// cache therefore goes to datasets in decreasing order of that ratio,
// and feasibility reduces to a single bandwidth comparison.
//
// MaxMinStorage is the cold reference: every call solves from scratch.
// Long-lived callers (Gavel) hold a MaxMinSolver, which memoizes the
// whole program on its true inputs and warm-starts the bisections while
// producing byte-identical allocations.
func MaxMinStorage(totalCache unit.Bytes, totalIO unit.Bandwidth, jobs []core.JobView) map[string]StorageAlloc {
	var s MaxMinSolver
	s.Cold = true
	return s.Storage(totalCache, totalIO, jobs)
}

// storageSig is the relevance projection of one job into the storage
// program: the only JobView fields solveStorage reads. Two job lists
// with equal signatures produce byte-identical allocations, which is
// what the solver's exact-match memo rests on.
type storageSig struct {
	id      string
	dataset string
	size    unit.Bytes
	cached  unit.Bytes
	profile estimator.JobProfile
}

// lambdaWarm carries one progressive-filling round's converged λ from
// the previous solve: the seed for the next warm-started bisection.
type lambdaWarm struct {
	// sig is the round's dataset-group structure (keys + member
	// counts). A churned group invalidates the hint — the group-level
	// invalidation rule — because a reshaped program's λ can land
	// anywhere; an unchanged structure drifts slowly and the recorded
	// drift sizes the bracket.
	sig    uint64
	lambda float64
	drift  float64
	ok     bool
}

// MaxMinSolver is the incremental façade over the max-min storage and
// bandwidth programs. It keeps two kinds of state between solves:
//
//   - an exact-match memo of the last storage solve keyed on the
//     relevance projection of its inputs (storageSig) — when no
//     relevant field changed, the previous allocation IS the answer
//     (solveStorage is a pure function), so the whole program is
//     skipped;
//   - per-round warm-start hints (lambdaWarm) that seed the bisections
//     with the previous converged λ. Warm probes are evaluated with
//     the exact same feasibility test on the current inputs; verdicts
//     for bracket-excluded mids are deduced by monotonicity, so the
//     bisection trajectory — and the returned λ — matches the cold
//     run bit for bit.
//
// The zero value is a valid cold-start solver. Cold forces full
// re-solves (the byte-identity reference used by the gates and by the
// engines' full-resolve mode).
type MaxMinSolver struct {
	Cold bool

	memoOK    bool
	memoCache unit.Bytes
	memoIO    unit.Bandwidth
	memoSigs  []storageSig
	memoOut   map[string]StorageAlloc

	hints  []lambdaWarm
	bwHint lambdaWarm

	sigBuf []storageSig
}

// Reset drops all memoized state; the next solves run cold.
func (s *MaxMinSolver) Reset() {
	s.memoOK = false
	s.memoOut = nil
	s.hints = s.hints[:0]
	s.bwHint = lambdaWarm{}
}

// Storage returns the max-min storage allocation for jobs. The returned
// map is owned by the solver: treat it as read-only and valid until the
// next Storage call. The memo fast path below is byte-identical to a
// full solve only while solveStorage stays a pure function of
// (totalCache, totalIO, the storageSig projection of jobs) — which the
// lint machinery checks via the annotation on solveStorage.
//
// silod:pure-requires: (*MaxMinSolver).solveStorage
func (s *MaxMinSolver) Storage(totalCache unit.Bytes, totalIO unit.Bandwidth, jobs []core.JobView) map[string]StorageAlloc {
	s.sigBuf = s.sigBuf[:0]
	for _, j := range jobs {
		s.sigBuf = append(s.sigBuf, storageSig{
			id: j.ID, dataset: j.DatasetKey,
			size: j.DatasetSize, cached: j.CachedBytes,
			profile: j.Profile,
		})
	}
	if !s.Cold && s.memoOK && s.memoCache == totalCache && s.memoIO == totalIO && sigsEqual(s.sigBuf, s.memoSigs) {
		return s.memoOut
	}
	out := s.solveStorage(totalCache, totalIO, jobs)
	s.memoOK = true
	s.memoCache = totalCache
	s.memoIO = totalIO
	s.memoSigs = append(s.memoSigs[:0], s.sigBuf...)
	s.memoOut = out
	return out
}

// sigsEqual reports element-wise equality of two projections.
//
// silod:pure
func sigsEqual(a, b []storageSig) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// solveStorage runs the progressive-filling max-min program. It is a
// pure function of its arguments (no clock, no RNG, no map-order
// dependence): the solver's exact-match memo and the engines'
// delta-aware solve skip both rest on this annotation holding.
//
// silod:pure
func (s *MaxMinSolver) solveStorage(totalCache unit.Bytes, totalIO unit.Bandwidth, jobs []core.JobView) map[string]StorageAlloc {
	out := make(map[string]StorageAlloc, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	// Equal division: every job gets cache/n on its dataset and io/n.
	n := float64(len(jobs))
	sjobs := make([]storageJob, 0, len(jobs))
	for _, j := range jobs {
		equal := estimator.Resources{
			Cache:    unit.Bytes(float64(totalCache) / n),
			RemoteIO: unit.Bandwidth(float64(totalIO) / n),
		}
		pe := float64(j.Profile.Perf(equal))
		if pe <= 0 {
			// A job that can make no progress even under equal share
			// (e.g. zero bandwidth and no cache): normalize by f* so the
			// program remains well-defined.
			pe = float64(j.Profile.IdealThroughput)
		}
		sjobs = append(sjobs, storageJob{view: j, perfEqual: pe})
	}

	active := sjobs
	remCache := float64(totalCache)
	remIO := float64(totalIO)
	// Progressive filling: at most len(jobs) rounds.
	for round := 0; len(active) > 0; round++ {
		probe := newLambdaProbe(active)
		lambda := probe.maxFeasibleLambda(remCache, remIO, s.roundHint(round, probe))
		s.storeHint(round, probe, lambda)
		alloc := probe.allocate(remCache, remIO, lambda)
		// Jobs capped at f* under this lambda are saturated: freeze them.
		var next []storageJob
		frozeAny := false
		for i, sj := range active {
			target := math.Min(lambda*sj.perfEqual, float64(sj.view.Profile.IdealThroughput))
			saturated := target >= float64(sj.view.Profile.IdealThroughput)-1e-9
			if saturated {
				out[sj.view.ID] = alloc[i]
				remCache -= float64(alloc[i].Cache)
				remIO -= float64(alloc[i].RemoteIO)
				frozeAny = true
			} else {
				next = append(next, sj)
			}
		}
		if !frozeAny {
			// No job saturated: the bottleneck binds all remaining jobs;
			// record their allocations and stop.
			for i, sj := range active {
				out[sj.view.ID] = alloc[i]
				remCache -= float64(alloc[i].Cache)
				remIO -= float64(alloc[i].RemoteIO)
			}
			break
		}
		active = next
	}
	spendSlack(remCache, remIO, jobs, out)
	mergeSharedCache(jobs, out)
	return out
}

// roundHint returns the warm-start hint for one progressive-filling
// round, or nil when solving cold, the round is new, or the round's
// group structure changed since the hint was recorded.
//
// silod:pure
func (s *MaxMinSolver) roundHint(round int, p *lambdaProbe) *lambdaWarm {
	if s.Cold || round >= len(s.hints) {
		return nil
	}
	h := &s.hints[round]
	if !h.ok || h.sig != p.groupSig() {
		return nil
	}
	return h
}

// storeHint records a round's converged λ (and the observed drift from
// the previous hint) for the next solve.
//
// silod:pure
func (s *MaxMinSolver) storeHint(round int, p *lambdaProbe, lambda float64) {
	if s.Cold {
		return
	}
	for len(s.hints) <= round {
		s.hints = append(s.hints, lambdaWarm{})
	}
	h := &s.hints[round]
	drift := warmDrift(h, lambda)
	*h = lambdaWarm{sig: p.groupSig(), lambda: lambda, drift: drift, ok: lambda > 0}
}

// warmDrift sizes the next warm bracket from how far λ moved since the
// previous solve: four times the observed relative movement, clamped to
// [1e-3, 0.5]. A stale or first-time hint gets the widest bracket.
//
// silod:pure
func warmDrift(prev *lambdaWarm, lambda float64) float64 {
	if prev == nil || !prev.ok || prev.lambda <= 0 || lambda <= 0 {
		return 0.5
	}
	d := 4 * math.Abs(lambda-prev.lambda) / prev.lambda
	if d < 1e-3 {
		d = 1e-3
	}
	if d > 0.5 {
		d = 0.5
	}
	return d
}

// probeGroup is one dataset group inside a lambdaProbe. Membership,
// size, and the hysteresis fraction are lambda-invariant; rate and
// cache are recomputed per probe.
type probeGroup struct {
	size float64 // dataset size d
	eff  float64 // max effective-cached fraction among members
	// maxSize and hyst are the λ-invariant factors of the scan score
	// rate/max(size,1)·(1+0.5·eff), precomputed once per probe so the
	// per-λ sort touches only flat slices.
	maxSize float64 // math.Max(size, 1)
	hyst    float64 // 1 + 0.5·eff
	members []int
	rate    float64 // Σ targets of jobs in the group (per probe)
	cache   float64 // cache granted to the group (per probe)
}

// lambdaProbe memoizes the throughput matrix of one progressive-filling
// round: the per-job equal-share performance, the dataset grouping, and
// the group scan order are all functions of the (job set, cluster)
// generation alone, so they are built once and shared by every lambda
// the bisection probes. Each probe then only refreshes the per-group
// target rates, re-sorts the scan order, and sums the required
// bandwidth — no per-probe allocation. Groups live in a flat slice
// indexed in first-encounter order; the per-λ sort compares precomputed
// scores through an int permutation, so the comparator performs no map
// lookups and no string compares except on exact score ties.
type lambdaProbe struct {
	jobs    []storageJob
	targets []float64
	keys    []string // group keys, first-encounter order == group index order
	groupOf []int    // job index -> group index
	groups  []probeGroup
	order   []int          // scratch: group indices re-sorted by bandwidth-saved-per-byte
	scores  []float64      // scratch: per-group scan score at the current λ
	allocs  []StorageAlloc // scratch for allocate
}

// newLambdaProbe builds the lambda-invariant state for one round.
//
// silod:pure
func newLambdaProbe(jobs []storageJob) *lambdaProbe {
	p := &lambdaProbe{
		jobs:    jobs,
		targets: make([]float64, len(jobs)),
		groupOf: make([]int, len(jobs)),
	}
	index := make(map[string]int, len(jobs))
	for i, sj := range jobs {
		key := sj.view.DatasetKey
		gi, ok := index[key]
		if !ok {
			gi = len(p.groups)
			index[key] = gi
			p.groups = append(p.groups, probeGroup{size: float64(sj.view.DatasetSize)})
			p.keys = append(p.keys, key)
		}
		g := &p.groups[gi]
		if f := float64(sj.view.CachedBytes) / math.Max(float64(sj.view.DatasetSize), 1); f > g.eff {
			g.eff = f
		}
		g.members = append(g.members, i)
		p.groupOf[i] = gi
	}
	for gi := range p.groups {
		g := &p.groups[gi]
		g.maxSize = math.Max(g.size, 1)
		g.hyst = 1 + 0.5*g.eff
	}
	p.order = make([]int, len(p.groups))
	for gi := range p.order {
		p.order[gi] = gi
	}
	p.scores = make([]float64, len(p.groups))
	p.allocs = make([]StorageAlloc, len(jobs))
	return p
}

// groupSig hashes the probe's dataset-group structure (FNV-1a over
// group keys and member counts): the invalidation key for warm-start
// hints.
//
// silod:pure
func (p *lambdaProbe) groupSig() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for gi, key := range p.keys {
		for i := 0; i < len(key); i++ {
			h = (h ^ uint64(key[i])) * prime64
		}
		h = (h ^ uint64(len(p.groups[gi].members))) * prime64
	}
	return h
}

// split computes every job's target throughput min(lambda·perfEqual,
// f*) and the greedy cache division at that lambda: cache goes to
// dataset groups in decreasing order of bandwidth-saved-per-byte
// (g.rate/g.size), with the warm-data hysteresis used throughout
// SiloD's allocators so already-effective datasets win near-ties and
// quotas stay stable as the job set churns.
//
// silod:hotpath — runs ~60 times per bisection; everything it touches
// is probe-owned scratch.
//
// silod:pure
func (p *lambdaProbe) split(remCache, lambda float64) {
	for gi := range p.groups {
		p.groups[gi].rate = 0
	}
	for i, sj := range p.jobs {
		t := math.Min(lambda*sj.perfEqual, float64(sj.view.Profile.IdealThroughput))
		p.targets[i] = t
		p.groups[p.groupOf[i]].rate += t
	}
	// The scan score has the exact operation order of the historical
	// per-comparison form rate/max(size,1)·(1+0.5·eff); scores are
	// total-ordered (ties fall to the unique group key), so the sorted
	// permutation is the same whichever sort visits them.
	for gi := range p.groups {
		g := &p.groups[gi]
		p.scores[gi] = g.rate / g.maxSize * g.hyst
	}
	order, scores, keys := p.order, p.scores, p.keys
	// order persists across λ probes. The comparator (score desc, key
	// asc) is a strict total order — score ties fall to the unique
	// group key — so the sorted permutation is unique: if the previous
	// probe's order is still sorted under the current scores (the
	// common case once the bisection narrows), it already IS the
	// permutation any sort would produce, and the O(n log n) re-sort is
	// skipped. Otherwise the sort's output is that same unique
	// permutation no matter what input order it starts from.
	sorted := true
	for k := 1; k < len(order); k++ {
		ga, gb := order[k], order[k-1]
		ea, eb := scores[ga], scores[gb]
		if eb < ea || (ea == eb && keys[ga] < keys[gb]) {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.Slice(order, func(a, b int) bool { // silod:alloc sort.Slice boxes its slice and allocates the comparator closure (2 allocs, amortized across the whole bisection)
			ga, gb := order[a], order[b]
			ea, eb := scores[ga], scores[gb]
			if ea != eb {
				return ea > eb
			}
			return keys[ga] < keys[gb]
		})
	}
	cacheLeft := remCache
	for _, gi := range order {
		g := &p.groups[gi]
		give := math.Min(g.size, cacheLeft)
		g.cache = give
		cacheLeft -= give
	}
}

// requiredIO sums the bandwidth the split at the current targets needs:
// t_j · (1 - c/d) per job, the steady-state demand at the planned cache
// (Eq. 2). Warm-up transients are the bandwidth program's concern
// (MaxMinBandwidth sizes actual grants effective-aware); the cache
// program plans the steady state, as the paper's formulation does.
// Groups are scanned in first-encounter order so the float accumulation
// order — and with it the feasibility verdict at the bisection
// boundary — is deterministic.
//
// silod:hotpath
// silod:pure
func (p *lambdaProbe) requiredIO() float64 {
	var total float64
	for gi := range p.groups {
		g := &p.groups[gi]
		miss := 1 - g.cache/g.maxSize
		if miss < 0 {
			miss = 0
		}
		for _, i := range g.members {
			total += p.targets[i] * miss
		}
	}
	return total
}

// feasible reports whether targets at lambda fit both budgets.
//
// silod:hotpath
// silod:pure
func (p *lambdaProbe) feasible(remCache, remIO, lambda float64) bool {
	p.split(remCache, lambda)
	return p.requiredIO() <= remIO*(1+1e-9)+1e-6
}

// allocate computes the cheapest allocation giving every job its
// target throughput at lambda. The returned slice is scratch, valid
// until the probe's next allocate call.
//
// silod:hotpath — fills the probe's scratch allocs slice in place.
//
// silod:pure
func (p *lambdaProbe) allocate(remCache, remIO, lambda float64) []StorageAlloc {
	p.split(remCache, lambda)
	for gi := range p.groups {
		g := &p.groups[gi]
		miss := 1 - g.cache/g.maxSize
		if miss < 0 {
			miss = 0
		}
		for _, i := range g.members {
			p.allocs[i] = StorageAlloc{
				Cache:    unit.Bytes(g.cache / float64(len(g.members))), // provisional split; merged later
				RemoteIO: unit.Bandwidth(p.targets[i] * miss),
				Perf:     unit.Bandwidth(p.targets[i]),
			}
		}
	}
	return p.allocs
}

// maxFeasibleLambda bisects on the normalized rate. The trajectory is
// the classic [0, hi] halving; a warm hint only changes HOW each mid's
// verdict is obtained, never the verdict itself: two probes around the
// previous λ establish evaluated feasible/infeasible bounds on the
// CURRENT inputs, and mids outside the open interval between them take
// the verdict monotonicity dictates while mids inside are evaluated
// exactly as in the cold run. With a good hint the ~60 probes collapse
// to the few mids near the answer.
//
// silod:hotpath
// silod:pure
func (p *lambdaProbe) maxFeasibleLambda(remCache, remIO float64, warm *lambdaWarm) float64 {
	// Upper bound: the largest f*/perfEqual ratio.
	hi := 0.0
	for _, sj := range p.jobs {
		r := float64(sj.view.Profile.IdealThroughput) / sj.perfEqual
		if r > hi {
			hi = r
		}
	}
	if hi <= 0 {
		return 0
	}
	lo := 0.0
	if p.feasible(remCache, remIO, hi) {
		return hi
	}
	// knownFeas/knownInfeas are λ values whose verdicts were evaluated
	// on the current inputs (λ=0 is trivially feasible, hi was just
	// probed infeasible).
	knownFeas, knownInfeas := 0.0, hi
	if warm != nil && warm.lambda > 0 {
		if c := warm.lambda * (1 - warm.drift); c > 0 && c < knownInfeas {
			if p.feasible(remCache, remIO, c) {
				knownFeas = c
			} else {
				knownInfeas = c
			}
		}
		if c := warm.lambda * (1 + warm.drift); c > knownFeas && c < knownInfeas {
			if p.feasible(remCache, remIO, c) {
				knownFeas = c
			} else {
				knownInfeas = c
			}
		}
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		var ok bool
		switch {
		case mid <= knownFeas:
			ok = true
		case mid >= knownInfeas:
			ok = false
		default:
			ok = p.feasible(remCache, remIO, mid)
			if ok {
				knownFeas = mid
			} else {
				knownInfeas = mid
			}
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// spendSlack distributes leftover cache (by cache efficiency, Eq. 5)
// and leftover bandwidth (to unsaturated jobs) so no resource idles
// while any job could use it. This cannot reduce any job's allocation,
// so the max-min optimum is preserved.
//
// silod:pure
func spendSlack(remCache, remIO float64, jobs []core.JobView, out map[string]StorageAlloc) {
	if remCache < 0 {
		remCache = 0
	}
	if remIO < 0 {
		remIO = 0
	}
	// Cache by efficiency: group jobs by dataset; efficiency of a
	// dataset is Σ f*/d of its jobs.
	type dgroup struct {
		key  string
		size float64
		eff  float64
		have float64
		jobs []string
	}
	groups := make(map[string]*dgroup)
	for _, j := range jobs {
		g, ok := groups[j.DatasetKey]
		if !ok {
			g = &dgroup{key: j.DatasetKey, size: float64(j.DatasetSize)}
			groups[j.DatasetKey] = g
		}
		g.eff += float64(j.Profile.IdealThroughput) / math.Max(float64(j.DatasetSize), 1)
		g.have += float64(out[j.ID].Cache)
		g.jobs = append(g.jobs, j.ID)
	}
	ordered := make([]*dgroup, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].eff != ordered[b].eff {
			return ordered[a].eff > ordered[b].eff
		}
		return ordered[a].key < ordered[b].key
	})
	for _, g := range ordered {
		if remCache <= 0 {
			break
		}
		room := g.size - g.have
		if room <= 0 {
			continue
		}
		give := math.Min(room, remCache)
		remCache -= give
		// Spread the extra across the group's jobs (merged per dataset
		// afterwards anyway).
		per := give / float64(len(g.jobs))
		for _, id := range g.jobs {
			a := out[id]
			a.Cache += unit.Bytes(per)
			out[id] = a
		}
	}
	// Bandwidth to unsaturated jobs, equal split refined per round.
	for round := 0; round < 4 && remIO > 1e-6; round++ {
		var unsat []core.JobView
		for _, j := range jobs {
			a := out[j.ID]
			if float64(a.Perf) < float64(j.Profile.IdealThroughput)-1e-9 {
				unsat = append(unsat, j)
			}
		}
		if len(unsat) == 0 {
			break
		}
		per := remIO / float64(len(unsat))
		for _, j := range unsat {
			a := out[j.ID]
			// Extra bandwidth raises perf by Eq. 3 up to f*; cap the
			// grant at what reaches f*.
			miss := 1 - math.Min(float64(a.Cache)/math.Max(float64(j.DatasetSize), 1), 1)
			need := (float64(j.Profile.IdealThroughput) - float64(a.Perf)) * miss
			give := math.Min(per, need)
			if give <= 0 {
				continue
			}
			a.RemoteIO += unit.Bandwidth(give)
			a.Perf = j.Profile.Perf(estimator.Resources{Cache: a.Cache, RemoteIO: a.RemoteIO})
			out[j.ID] = a
			remIO -= give
		}
	}
}

// mergeSharedCache recomputes every job's Perf against the full merged
// cache of its dataset (jobs sharing a dataset each benefit from the
// whole dataset allocation, while the caller charges it once).
//
// silod:pure
func mergeSharedCache(jobs []core.JobView, out map[string]StorageAlloc) {
	totals := make(map[string]unit.Bytes)
	for _, j := range jobs {
		totals[j.DatasetKey] += out[j.ID].Cache
	}
	for _, j := range jobs {
		a := out[j.ID]
		merged := totals[j.DatasetKey]
		if merged > j.DatasetSize {
			merged = j.DatasetSize
		}
		a.Perf = j.Profile.Perf(estimator.Resources{Cache: merged, RemoteIO: a.RemoteIO})
		out[j.ID] = a
	}
}

// MaxMinBandwidth solves the bandwidth-only max-min program with cache
// quotas fixed: maximize min_j min(f*, b_j/(1-q_j/d_j)) / perfEqual_j
// subject to Σ b_j <= total, where perfEqual is SiloDPerf under the
// equal storage division among the n running jobs. Grants are sized
// against the *effective* cache (warming datasets need their full
// current demand to hit the target now), which also satisfies the
// planned-quota objective since q >= effective. The required bandwidth
// is monotone in the normalized rate λ, so bisection is exact; leftover
// bandwidth (from jobs capped at f*) should be spent by the caller.
//
// MaxMinBandwidth is the cold reference; Gavel routes through
// MaxMinSolver.Bandwidth, whose warm-started bisection returns the same
// grants bit for bit.
func MaxMinBandwidth(cl core.Cluster, total unit.Bandwidth, running []core.JobView,
	quota map[string]unit.Bytes) map[string]unit.Bandwidth {
	var s MaxMinSolver
	s.Cold = true
	return s.Bandwidth(cl, total, running, quota)
}

// Bandwidth is the warm-started bandwidth program. needed(λ) is a sum
// of terms min(λ·pe, f*)·missEff, each nondecreasing in λ, so verdict
// deduction from evaluated bounds is exact (not merely assumed): the
// warm run evaluates needed at the same trajectory's mids only where
// the evaluated bracket has not already decided them.
func (s *MaxMinSolver) Bandwidth(cl core.Cluster, total unit.Bandwidth, running []core.JobView,
	quota map[string]unit.Bytes) map[string]unit.Bandwidth {
	out := make(map[string]unit.Bandwidth, len(running))
	if len(running) == 0 {
		return out
	}
	n := float64(len(running))
	equal := estimator.Resources{
		Cache:    unit.Bytes(float64(cl.Cache) / n),
		RemoteIO: unit.Bandwidth(float64(cl.RemoteIO) / n),
	}
	pe := make([]float64, len(running))
	missEff := make([]float64, len(running))
	hi := 0.0
	for i, j := range running {
		p := float64(j.Profile.Perf(equal))
		if p <= 0 {
			p = float64(j.Profile.IdealThroughput)
		}
		pe[i] = p
		covered := float64(quota[j.DatasetKey])
		if e := float64(j.EffectiveCached); e < covered {
			covered = e
		}
		d := math.Max(float64(j.DatasetSize), 1)
		m := 1 - covered/d
		if m < 0 {
			m = 0
		}
		missEff[i] = m
		if r := float64(j.Profile.IdealThroughput) / p; r > hi {
			hi = r
		}
	}
	needed := func(lambda float64) float64 {
		var sum float64
		for i, j := range running {
			t := math.Min(lambda*pe[i], float64(j.Profile.IdealThroughput))
			sum += t * missEff[i]
		}
		return sum
	}
	budget := float64(total)
	lo := 0.0
	if needed(hi) <= budget {
		lo = hi
	} else {
		knownFeas, knownInfeas := 0.0, hi
		if !s.Cold && s.bwHint.ok && s.bwHint.lambda > 0 {
			if c := s.bwHint.lambda * (1 - s.bwHint.drift); c > 0 && c < knownInfeas {
				if needed(c) <= budget {
					knownFeas = c
				} else {
					knownInfeas = c
				}
			}
			if c := s.bwHint.lambda * (1 + s.bwHint.drift); c > knownFeas && c < knownInfeas {
				if needed(c) <= budget {
					knownFeas = c
				} else {
					knownInfeas = c
				}
			}
		}
		h := hi
		for k := 0; k < 60; k++ {
			mid := (lo + h) / 2
			var ok bool
			switch {
			case mid <= knownFeas:
				ok = true
			case mid >= knownInfeas:
				ok = false
			default:
				ok = needed(mid) <= budget
				if ok {
					knownFeas = mid
				} else {
					knownInfeas = mid
				}
			}
			if ok {
				lo = mid
			} else {
				h = mid
			}
		}
	}
	if !s.Cold {
		drift := warmDrift(&s.bwHint, lo)
		s.bwHint = lambdaWarm{lambda: lo, drift: drift, ok: lo > 0}
	}
	for i, j := range running {
		t := math.Min(lo*pe[i], float64(j.Profile.IdealThroughput))
		out[j.ID] = unit.Bandwidth(t * missEff[i])
	}
	return out
}

// DatasetQuotas folds per-job cache allocations into per-dataset quotas
// (charging shared datasets once, capped at dataset size).
func DatasetQuotas(jobs []core.JobView, allocs map[string]StorageAlloc) map[string]unit.Bytes {
	quota := make(map[string]unit.Bytes)
	size := make(map[string]unit.Bytes)
	for _, j := range jobs {
		quota[j.DatasetKey] += allocs[j.ID].Cache
		size[j.DatasetKey] = j.DatasetSize
	}
	for k, q := range quota {
		if q > size[k] {
			q = size[k]
		}
		if q < 0 {
			// Guard against float round-off from the slack pass; a
			// negative quota would be rejected by Assignment.Validate.
			q = 0
		}
		quota[k] = q
	}
	return quota
}
