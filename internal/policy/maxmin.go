// Package policy implements the scheduling policies SiloD evaluates
// (§5, §7): FIFO, multi-resource SJF (Tetris/Tiresias style, Eq. 6/7)
// and Gavel max-min fairness (Eq. 8/9) — each in a vanilla,
// storage-oblivious form and a SiloD-enhanced form that jointly
// allocates GPUs, cache and remote IO — plus the storage allocators of
// the baseline cache systems (Alluxio/LRU, CoorDL, Quiver) and SiloD's
// greedy policy (Algorithm 2).
package policy

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/unit"
)

// storageJob is one job in the max-min storage program: a job that has
// already been granted GPUs and now competes for cache and remote IO.
type storageJob struct {
	view core.JobView
	// perfEqual is SiloDPerf under the equal division R_equal (Eq. 8's
	// denominator), in bytes/s.
	perfEqual float64
}

// StorageAlloc is the result of the max-min storage program for one job.
type StorageAlloc struct {
	Cache    unit.Bytes     // allocated to the job's dataset (shared datasets merged by caller)
	RemoteIO unit.Bandwidth // allocated to the job
	Perf     unit.Bandwidth // resulting SiloDPerf
}

// MaxMinStorage solves the storage part of Eq. 9 exactly: maximize the
// minimum normalized performance min_j SiloDPerf(j, R_j)/SiloDPerf(j,
// R_equal) subject to Σ cache <= totalCache and Σ remoteIO <= totalIO,
// then progressively fills: jobs whose performance saturates at f* are
// frozen at their minimal allocation and the remaining resources are
// re-maximized over the rest, and any final slack is spent by cache
// efficiency. Datasets shared by several jobs are charged once and the
// merged demand is considered jointly (§6).
//
// The inner feasibility test exploits the closed form (Eq. 4): to give
// job j throughput t with cache c it needs remote IO t·(1-c/d), so a
// byte of cache on dataset D saves Σ_{j∈D} t_j/d bytes/s of bandwidth —
// cache therefore goes to datasets in decreasing order of that ratio,
// and feasibility reduces to a single bandwidth comparison.
func MaxMinStorage(totalCache unit.Bytes, totalIO unit.Bandwidth, jobs []core.JobView) map[string]StorageAlloc {
	out := make(map[string]StorageAlloc, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	// Equal division: every job gets cache/n on its dataset and io/n.
	n := float64(len(jobs))
	sjobs := make([]storageJob, 0, len(jobs))
	for _, j := range jobs {
		equal := estimator.Resources{
			Cache:    unit.Bytes(float64(totalCache) / n),
			RemoteIO: unit.Bandwidth(float64(totalIO) / n),
		}
		pe := float64(j.Profile.Perf(equal))
		if pe <= 0 {
			// A job that can make no progress even under equal share
			// (e.g. zero bandwidth and no cache): normalize by f* so the
			// program remains well-defined.
			pe = float64(j.Profile.IdealThroughput)
		}
		sjobs = append(sjobs, storageJob{view: j, perfEqual: pe})
	}

	active := sjobs
	remCache := float64(totalCache)
	remIO := float64(totalIO)
	// Progressive filling: at most len(jobs) rounds.
	for len(active) > 0 {
		probe := newLambdaProbe(active)
		lambda := probe.maxFeasibleLambda(remCache, remIO)
		alloc := probe.allocate(remCache, remIO, lambda)
		// Jobs capped at f* under this lambda are saturated: freeze them.
		var next []storageJob
		frozeAny := false
		for i, sj := range active {
			target := math.Min(lambda*sj.perfEqual, float64(sj.view.Profile.IdealThroughput))
			saturated := target >= float64(sj.view.Profile.IdealThroughput)-1e-9
			if saturated {
				out[sj.view.ID] = alloc[i]
				remCache -= float64(alloc[i].Cache)
				remIO -= float64(alloc[i].RemoteIO)
				frozeAny = true
			} else {
				next = append(next, sj)
			}
		}
		if !frozeAny {
			// No job saturated: the bottleneck binds all remaining jobs;
			// record their allocations and stop.
			for i, sj := range active {
				out[sj.view.ID] = alloc[i]
				remCache -= float64(alloc[i].Cache)
				remIO -= float64(alloc[i].RemoteIO)
			}
			break
		}
		active = next
	}
	spendSlack(remCache, remIO, jobs, out)
	mergeSharedCache(jobs, out)
	return out
}

// probeGroup is one dataset group inside a lambdaProbe. Membership,
// size, and the hysteresis fraction are lambda-invariant; rate and
// cache are recomputed per probe.
type probeGroup struct {
	size    float64 // dataset size d
	eff     float64 // max effective-cached fraction among members
	members []int
	rate    float64 // Σ targets of jobs in the group (per probe)
	cache   float64 // cache granted to the group (per probe)
}

// lambdaProbe memoizes the throughput matrix of one progressive-filling
// round: the per-job equal-share performance, the dataset grouping, and
// the group scan order are all functions of the (job set, cluster)
// generation alone, so they are built once and shared by every lambda
// the bisection probes. Each probe then only refreshes the per-group
// target rates, re-sorts the scan order, and sums the required
// bandwidth — no per-probe allocation.
type lambdaProbe struct {
	jobs    []storageJob
	targets []float64
	keys    []string // first-encounter order; the sort seed of every probe
	order   []string // scratch: keys re-sorted by bandwidth-saved-per-byte
	groups  map[string]*probeGroup
	allocs  []StorageAlloc // scratch for allocate
}

// newLambdaProbe builds the lambda-invariant state for one round.
func newLambdaProbe(jobs []storageJob) *lambdaProbe {
	p := &lambdaProbe{
		jobs:    jobs,
		targets: make([]float64, len(jobs)),
		groups:  make(map[string]*probeGroup),
		allocs:  make([]StorageAlloc, len(jobs)),
	}
	for i, sj := range jobs {
		key := sj.view.DatasetKey
		g, ok := p.groups[key]
		if !ok {
			g = &probeGroup{size: float64(sj.view.DatasetSize)}
			p.groups[key] = g
			p.keys = append(p.keys, key)
		}
		if f := float64(sj.view.CachedBytes) / math.Max(float64(sj.view.DatasetSize), 1); f > g.eff {
			g.eff = f
		}
		g.members = append(g.members, i)
	}
	p.order = make([]string, len(p.keys))
	return p
}

// split computes every job's target throughput min(lambda·perfEqual,
// f*) and the greedy cache division at that lambda: cache goes to
// dataset groups in decreasing order of bandwidth-saved-per-byte
// (g.rate/g.size), with the warm-data hysteresis used throughout
// SiloD's allocators so already-effective datasets win near-ties and
// quotas stay stable as the job set churns.
//
// silod:hotpath — runs ~60 times per bisection; everything it touches
// is probe-owned scratch.
func (p *lambdaProbe) split(remCache, lambda float64) {
	for _, g := range p.groups {
		g.rate = 0
	}
	for i, sj := range p.jobs {
		t := math.Min(lambda*sj.perfEqual, float64(sj.view.Profile.IdealThroughput))
		p.targets[i] = t
		p.groups[sj.view.DatasetKey].rate += t
	}
	copy(p.order, p.keys)
	order := p.order
	sort.Slice(order, func(a, b int) bool { // silod:alloc sort.Slice boxes its slice and allocates the comparator closure (2 allocs, amortized across the whole bisection)
		ga, gb := p.groups[order[a]], p.groups[order[b]]
		ea := ga.rate / math.Max(ga.size, 1) * (1 + 0.5*ga.eff)
		eb := gb.rate / math.Max(gb.size, 1) * (1 + 0.5*gb.eff)
		if ea != eb {
			return ea > eb
		}
		return order[a] < order[b]
	})
	cacheLeft := remCache
	for _, key := range order {
		g := p.groups[key]
		give := math.Min(g.size, cacheLeft)
		g.cache = give
		cacheLeft -= give
	}
}

// requiredIO sums the bandwidth the split at the current targets needs:
// t_j · (1 - c/d) per job, the steady-state demand at the planned cache
// (Eq. 2). Warm-up transients are the bandwidth program's concern
// (MaxMinBandwidth sizes actual grants effective-aware); the cache
// program plans the steady state, as the paper's formulation does.
// Groups are scanned in first-encounter order so the float accumulation
// order — and with it the feasibility verdict at the bisection
// boundary — is deterministic.
//
// silod:hotpath
func (p *lambdaProbe) requiredIO() float64 {
	var total float64
	for _, key := range p.keys {
		g := p.groups[key]
		miss := 1 - g.cache/math.Max(g.size, 1)
		if miss < 0 {
			miss = 0
		}
		for _, i := range g.members {
			total += p.targets[i] * miss
		}
	}
	return total
}

// feasible reports whether targets at lambda fit both budgets.
//
// silod:hotpath
func (p *lambdaProbe) feasible(remCache, remIO, lambda float64) bool {
	p.split(remCache, lambda)
	return p.requiredIO() <= remIO*(1+1e-9)+1e-6
}

// allocate computes the cheapest allocation giving every job its
// target throughput at lambda. The returned slice is scratch, valid
// until the probe's next allocate call.
//
// silod:hotpath — fills the probe's scratch allocs slice in place.
func (p *lambdaProbe) allocate(remCache, remIO, lambda float64) []StorageAlloc {
	p.split(remCache, lambda)
	for _, key := range p.keys {
		g := p.groups[key]
		miss := 1 - g.cache/math.Max(g.size, 1)
		if miss < 0 {
			miss = 0
		}
		for _, i := range g.members {
			p.allocs[i] = StorageAlloc{
				Cache:    unit.Bytes(g.cache / float64(len(g.members))), // provisional split; merged later
				RemoteIO: unit.Bandwidth(p.targets[i] * miss),
				Perf:     unit.Bandwidth(p.targets[i]),
			}
		}
	}
	return p.allocs
}

// maxFeasibleLambda bisects on the normalized rate.
//
// silod:hotpath
func (p *lambdaProbe) maxFeasibleLambda(remCache, remIO float64) float64 {
	// Upper bound: the largest f*/perfEqual ratio.
	hi := 0.0
	for _, sj := range p.jobs {
		r := float64(sj.view.Profile.IdealThroughput) / sj.perfEqual
		if r > hi {
			hi = r
		}
	}
	if hi <= 0 {
		return 0
	}
	lo := 0.0
	if p.feasible(remCache, remIO, hi) {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if p.feasible(remCache, remIO, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// spendSlack distributes leftover cache (by cache efficiency, Eq. 5)
// and leftover bandwidth (to unsaturated jobs) so no resource idles
// while any job could use it. This cannot reduce any job's allocation,
// so the max-min optimum is preserved.
func spendSlack(remCache, remIO float64, jobs []core.JobView, out map[string]StorageAlloc) {
	if remCache < 0 {
		remCache = 0
	}
	if remIO < 0 {
		remIO = 0
	}
	// Cache by efficiency: group jobs by dataset; efficiency of a
	// dataset is Σ f*/d of its jobs.
	type dgroup struct {
		key  string
		size float64
		eff  float64
		have float64
		jobs []string
	}
	groups := make(map[string]*dgroup)
	for _, j := range jobs {
		g, ok := groups[j.DatasetKey]
		if !ok {
			g = &dgroup{key: j.DatasetKey, size: float64(j.DatasetSize)}
			groups[j.DatasetKey] = g
		}
		g.eff += float64(j.Profile.IdealThroughput) / math.Max(float64(j.DatasetSize), 1)
		g.have += float64(out[j.ID].Cache)
		g.jobs = append(g.jobs, j.ID)
	}
	ordered := make([]*dgroup, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].eff != ordered[b].eff {
			return ordered[a].eff > ordered[b].eff
		}
		return ordered[a].key < ordered[b].key
	})
	for _, g := range ordered {
		if remCache <= 0 {
			break
		}
		room := g.size - g.have
		if room <= 0 {
			continue
		}
		give := math.Min(room, remCache)
		remCache -= give
		// Spread the extra across the group's jobs (merged per dataset
		// afterwards anyway).
		per := give / float64(len(g.jobs))
		for _, id := range g.jobs {
			a := out[id]
			a.Cache += unit.Bytes(per)
			out[id] = a
		}
	}
	// Bandwidth to unsaturated jobs, equal split refined per round.
	for round := 0; round < 4 && remIO > 1e-6; round++ {
		var unsat []core.JobView
		for _, j := range jobs {
			a := out[j.ID]
			if float64(a.Perf) < float64(j.Profile.IdealThroughput)-1e-9 {
				unsat = append(unsat, j)
			}
		}
		if len(unsat) == 0 {
			break
		}
		per := remIO / float64(len(unsat))
		for _, j := range unsat {
			a := out[j.ID]
			// Extra bandwidth raises perf by Eq. 3 up to f*; cap the
			// grant at what reaches f*.
			miss := 1 - math.Min(float64(a.Cache)/math.Max(float64(j.DatasetSize), 1), 1)
			need := (float64(j.Profile.IdealThroughput) - float64(a.Perf)) * miss
			give := math.Min(per, need)
			if give <= 0 {
				continue
			}
			a.RemoteIO += unit.Bandwidth(give)
			a.Perf = j.Profile.Perf(estimator.Resources{Cache: a.Cache, RemoteIO: a.RemoteIO})
			out[j.ID] = a
			remIO -= give
		}
	}
}

// mergeSharedCache recomputes every job's Perf against the full merged
// cache of its dataset (jobs sharing a dataset each benefit from the
// whole dataset allocation, while the caller charges it once).
func mergeSharedCache(jobs []core.JobView, out map[string]StorageAlloc) {
	totals := make(map[string]unit.Bytes)
	for _, j := range jobs {
		totals[j.DatasetKey] += out[j.ID].Cache
	}
	for _, j := range jobs {
		a := out[j.ID]
		merged := totals[j.DatasetKey]
		if merged > j.DatasetSize {
			merged = j.DatasetSize
		}
		a.Perf = j.Profile.Perf(estimator.Resources{Cache: merged, RemoteIO: a.RemoteIO})
		out[j.ID] = a
	}
}

// MaxMinBandwidth solves the bandwidth-only max-min program with cache
// quotas fixed: maximize min_j min(f*, b_j/(1-q_j/d_j)) / perfEqual_j
// subject to Σ b_j <= total, where perfEqual is SiloDPerf under the
// equal storage division among the n running jobs. Grants are sized
// against the *effective* cache (warming datasets need their full
// current demand to hit the target now), which also satisfies the
// planned-quota objective since q >= effective. The required bandwidth
// is monotone in the normalized rate λ, so bisection is exact; leftover
// bandwidth (from jobs capped at f*) should be spent by the caller.
func MaxMinBandwidth(cl core.Cluster, total unit.Bandwidth, running []core.JobView,
	quota map[string]unit.Bytes) map[string]unit.Bandwidth {
	out := make(map[string]unit.Bandwidth, len(running))
	if len(running) == 0 {
		return out
	}
	n := float64(len(running))
	equal := estimator.Resources{
		Cache:    unit.Bytes(float64(cl.Cache) / n),
		RemoteIO: unit.Bandwidth(float64(cl.RemoteIO) / n),
	}
	pe := make([]float64, len(running))
	missEff := make([]float64, len(running))
	hi := 0.0
	for i, j := range running {
		p := float64(j.Profile.Perf(equal))
		if p <= 0 {
			p = float64(j.Profile.IdealThroughput)
		}
		pe[i] = p
		covered := float64(quota[j.DatasetKey])
		if e := float64(j.EffectiveCached); e < covered {
			covered = e
		}
		d := math.Max(float64(j.DatasetSize), 1)
		m := 1 - covered/d
		if m < 0 {
			m = 0
		}
		missEff[i] = m
		if r := float64(j.Profile.IdealThroughput) / p; r > hi {
			hi = r
		}
	}
	needed := func(lambda float64) float64 {
		var s float64
		for i, j := range running {
			t := math.Min(lambda*pe[i], float64(j.Profile.IdealThroughput))
			s += t * missEff[i]
		}
		return s
	}
	budget := float64(total)
	lo := 0.0
	if needed(hi) <= budget {
		lo = hi
	} else {
		for k := 0; k < 60; k++ {
			mid := (lo + hi) / 2
			if needed(mid) <= budget {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	for i, j := range running {
		t := math.Min(lo*pe[i], float64(j.Profile.IdealThroughput))
		out[j.ID] = unit.Bandwidth(t * missEff[i])
	}
	return out
}

// DatasetQuotas folds per-job cache allocations into per-dataset quotas
// (charging shared datasets once, capped at dataset size).
func DatasetQuotas(jobs []core.JobView, allocs map[string]StorageAlloc) map[string]unit.Bytes {
	quota := make(map[string]unit.Bytes)
	size := make(map[string]unit.Bytes)
	for _, j := range jobs {
		quota[j.DatasetKey] += allocs[j.ID].Cache
		size[j.DatasetKey] = j.DatasetSize
	}
	for k, q := range quota {
		if q > size[k] {
			q = size[k]
		}
		if q < 0 {
			// Guard against float round-off from the slack pass; a
			// negative quota would be rejected by Assignment.Validate.
			q = 0
		}
		quota[k] = q
	}
	return quota
}
