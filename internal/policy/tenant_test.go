package policy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tenant"
	"repro/internal/unit"
)

// stubPolicy returns a fixed assignment, letting the clamp be tested in
// isolation from the real allocators.
type stubPolicy struct {
	a core.Assignment
}

func (s *stubPolicy) Name() string { return "stub" }
func (s *stubPolicy) Assign(core.Cluster, unit.Time, []core.JobView) core.Assignment {
	// Deep-copy so the clamp's in-place edits do not leak across calls.
	out := core.NewAssignment()
	for k, v := range s.a.GPUs {
		out.GPUs[k] = v
	}
	for k, v := range s.a.CacheQuota {
		out.CacheQuota[k] = v
	}
	for k, v := range s.a.RemoteIO {
		out.RemoteIO[k] = v
	}
	return out
}

func clampRegistry(t *testing.T, tenants ...tenant.Tenant) *tenant.Registry {
	t.Helper()
	reg := tenant.NewRegistry()
	for _, tn := range tenants {
		if err := reg.Register(tn); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func view(id, ten string, slo tenant.SLOClass, gpus int, ds string, submit unit.Time) core.JobView {
	return core.JobView{ID: id, NumGPUs: gpus, Tenant: ten, SLO: slo, DatasetKey: ds, Submit: submit}
}

// TestTenantClampGPURevokeOrder: over-quota GPU grants are revoked from
// the back of the tenant's canonical queue, so its earliest/highest-SLO
// jobs keep their GPUs.
func TestTenantClampGPURevokeOrder(t *testing.T) {
	reg := clampRegistry(t, tenant.Tenant{ID: "g", Class: tenant.Sheddable, Quota: tenant.Quota{GPUs: 2}})
	jobs := []core.JobView{
		view("a", "g", tenant.Sheddable, 1, "ds-a", 0),
		view("b", "g", tenant.Sheddable, 1, "ds-b", 100),
		view("c", "g", tenant.Sheddable, 1, "ds-c", 200),
	}
	stub := &stubPolicy{a: core.Assignment{
		GPUs:       map[string]int{"a": 1, "b": 1, "c": 1},
		CacheQuota: map[string]unit.Bytes{},
		RemoteIO:   map[string]unit.Bandwidth{"a": unit.MBpsOf(10), "b": unit.MBpsOf(10), "c": unit.MBpsOf(10)},
	}}
	p := &TenantPolicy{Inner: stub, Reg: reg}
	a := p.Assign(core.Cluster{GPUs: 8}, 0, jobs)
	if a.GPUs["a"] != 1 || a.GPUs["b"] != 1 {
		t.Errorf("front-of-queue jobs lost GPUs: %+v", a.GPUs)
	}
	if _, ok := a.GPUs["c"]; ok {
		t.Errorf("latest job kept its grant over quota: %+v", a.GPUs)
	}
	if _, ok := a.RemoteIO["c"]; ok {
		t.Error("revoked job kept its remote IO grant")
	}
}

// TestTenantClampGPUKeepsCritical: within one tenant, SLO rank beats
// submit time when choosing what to revoke.
func TestTenantClampGPUKeepsCritical(t *testing.T) {
	reg := clampRegistry(t, tenant.Tenant{ID: "m", Class: tenant.Standard, Quota: tenant.Quota{GPUs: 1}})
	jobs := []core.JobView{
		view("late-crit", "m", tenant.Critical, 1, "ds1", 500),
		view("early-shed", "m", tenant.Sheddable, 1, "ds2", 0),
	}
	stub := &stubPolicy{a: core.Assignment{
		GPUs:       map[string]int{"late-crit": 1, "early-shed": 1},
		CacheQuota: map[string]unit.Bytes{},
		RemoteIO:   map[string]unit.Bandwidth{},
	}}
	p := &TenantPolicy{Inner: stub, Reg: reg}
	a := p.Assign(core.Cluster{GPUs: 8}, 0, jobs)
	if a.GPUs["late-crit"] != 1 {
		t.Errorf("critical job revoked before sheddable: %+v", a.GPUs)
	}
	if _, ok := a.GPUs["early-shed"]; ok {
		t.Errorf("sheddable job survived quota pressure over critical: %+v", a.GPUs)
	}
}

// TestTenantClampCacheScaling: a tenant over its cache quota has its
// attributed datasets scaled proportionally; other tenants' datasets
// are untouched.
func TestTenantClampCacheScaling(t *testing.T) {
	reg := clampRegistry(t,
		tenant.Tenant{ID: "capped", Class: tenant.Standard, Quota: tenant.Quota{Cache: unit.GiB(100)}},
		tenant.Tenant{ID: "free", Class: tenant.Standard},
	)
	jobs := []core.JobView{
		view("c1", "capped", tenant.Standard, 1, "ds-x", 0),
		view("c2", "capped", tenant.Standard, 1, "ds-y", 10),
		view("f1", "free", tenant.Standard, 1, "ds-z", 20),
	}
	stub := &stubPolicy{a: core.Assignment{
		GPUs: map[string]int{"c1": 1, "c2": 1, "f1": 1},
		CacheQuota: map[string]unit.Bytes{
			"ds-x": unit.GiB(150),
			"ds-y": unit.GiB(50),
			"ds-z": unit.GiB(500),
		},
		RemoteIO: map[string]unit.Bandwidth{},
	}}
	p := &TenantPolicy{Inner: stub, Reg: reg}
	a := p.Assign(core.Cluster{GPUs: 8}, 0, jobs)
	got := a.CacheQuota["ds-x"] + a.CacheQuota["ds-y"]
	if got > unit.GiB(100) || got < unit.Bytes(float64(unit.GiB(100))*0.999) {
		t.Errorf("capped tenant holds %v cache, want ~100 GiB", got)
	}
	// Proportionality: ds-x had 3x ds-y's quota and must keep that ratio.
	if x, y := a.CacheQuota["ds-x"], a.CacheQuota["ds-y"]; x < 2*y || x > 4*y {
		t.Errorf("scale-down not proportional: ds-x %v vs ds-y %v", x, y)
	}
	if a.CacheQuota["ds-z"] != unit.GiB(500) {
		t.Errorf("unquota'd tenant's dataset was scaled: %v", a.CacheQuota["ds-z"])
	}
}

// TestTenantClampEgressScaling: remote IO grants scale down to the
// egress quota, proportionally across the tenant's jobs.
func TestTenantClampEgressScaling(t *testing.T) {
	reg := clampRegistry(t, tenant.Tenant{ID: "g", Class: tenant.Sheddable, Quota: tenant.Quota{Egress: unit.MBpsOf(100)}})
	jobs := []core.JobView{
		view("a", "g", tenant.Sheddable, 1, "ds-a", 0),
		view("b", "g", tenant.Sheddable, 1, "ds-b", 10),
	}
	stub := &stubPolicy{a: core.Assignment{
		GPUs:       map[string]int{"a": 1, "b": 1},
		CacheQuota: map[string]unit.Bytes{},
		RemoteIO:   map[string]unit.Bandwidth{"a": unit.MBpsOf(150), "b": unit.MBpsOf(50)},
	}}
	p := &TenantPolicy{Inner: stub, Reg: reg}
	a := p.Assign(core.Cluster{GPUs: 8}, 0, jobs)
	total := a.RemoteIO["a"] + a.RemoteIO["b"]
	if total > unit.MBpsOf(100) || total < unit.Bandwidth(float64(unit.MBpsOf(100))*0.999) {
		t.Errorf("egress after clamp = %v, want ~100 MB/s", total)
	}
	if x, y := a.RemoteIO["a"], a.RemoteIO["b"]; x < 2*y || x > 4*y {
		t.Errorf("egress scale-down not proportional: %v vs %v", x, y)
	}
}

// TestTenantClampNoQuotaNoChange: tenants without quotas (and the
// untenanted pool) pass through untouched, and BuildTenant with an
// empty registry returns the inner policy itself.
func TestTenantClampNoQuotaNoChange(t *testing.T) {
	reg := clampRegistry(t, tenant.Tenant{ID: "open", Class: tenant.Critical})
	jobs := []core.JobView{
		view("a", "open", tenant.Critical, 2, "ds-a", 0),
		view("b", "", tenant.Standard, 2, "ds-b", 10),
	}
	orig := core.Assignment{
		GPUs:       map[string]int{"a": 2, "b": 2},
		CacheQuota: map[string]unit.Bytes{"ds-a": unit.GiB(10), "ds-b": unit.GiB(20)},
		RemoteIO:   map[string]unit.Bandwidth{"a": unit.MBpsOf(30), "b": unit.MBpsOf(40)},
	}
	p := &TenantPolicy{Inner: &stubPolicy{a: orig}, Reg: reg}
	a := p.Assign(core.Cluster{GPUs: 8}, 0, jobs)
	for id, g := range orig.GPUs {
		if a.GPUs[id] != g {
			t.Errorf("GPUs[%s] changed: %d -> %d", id, g, a.GPUs[id])
		}
	}
	for ds, q := range orig.CacheQuota {
		if a.CacheQuota[ds] != q {
			t.Errorf("CacheQuota[%s] changed: %v -> %v", ds, q, a.CacheQuota[ds])
		}
	}
	for id, bw := range orig.RemoteIO {
		if a.RemoteIO[id] != bw {
			t.Errorf("RemoteIO[%s] changed: %v -> %v", id, bw, a.RemoteIO[id])
		}
	}

	inner, err := Build(FIFOKind, SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BuildTenant(FIFOKind, SiloD, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != inner.Name() {
		t.Errorf("nil registry wrapped the policy: %s", got.Name())
	}
	wrapped, err := BuildTenant(FIFOKind, SiloD, 1, clampRegistry(t, tenant.Tenant{ID: "x"}))
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Name() != inner.Name()+"+tenant" {
		t.Errorf("non-empty registry did not wrap: %s", wrapped.Name())
	}
}
