package policy

import "repro/internal/core"

// allocatorPure reports whether a storage allocator is a pure function
// of its inputs. The list is deliberately conservative: only allocators
// known to be stateless qualify, so an allocator added later defaults
// to impure until it is vetted. QuiverAllocator draws profiling noise
// from its RNG on every solve and must never be skipped.
//
// Each vetted allocator's AllocateStorage is machine-checked: the
// requires markers below fail the lint if one loses its silod:pure
// annotation (or stops existing).
//
// silod:pure-requires: GreedyAllocator.AllocateStorage, CoorDLAllocator.AllocateStorage, AlluxioAllocator.AllocateStorage
func allocatorPure(s StorageAllocator) bool {
	switch s.(type) {
	case GreedyAllocator, *GreedyAllocator,
		CoorDLAllocator, *CoorDLAllocator,
		AlluxioAllocator, *AlluxioAllocator:
		return true
	}
	return false
}

// PureAssign implements core.PureAssigner: FIFO's admission order
// depends only on the job views, so purity reduces to the allocator's.
//
// silod:pure-requires: (*FIFO).Assign
func (f *FIFO) PureAssign() bool { return allocatorPure(f.Storage) }

// PureAssign implements core.PureAssigner: the SJF score (Eq. 6/7) is a
// function of the cluster and job views alone — `now` never enters.
//
// silod:pure-requires: (*SJF).Assign
func (s *SJF) PureAssign() bool {
	return s.Enhanced || allocatorPure(s.Storage)
}

// PureAssign implements core.PureAssigner. Gavel's max-min and
// finish-time-fairness orderings rank by deficit against elapsed time,
// so their output changes as `now` advances even with identical views —
// they are impure by the PureAssigner contract. Only the
// throughput-maximizing objective orders by a time-free score.
//
// silod:pure-requires: (*Gavel).assignThroughput, throughputKey
func (g *Gavel) PureAssign() bool {
	if g.Objective != TotalThroughput {
		return false
	}
	return g.Enhanced || allocatorPure(g.Storage)
}

// IgnoredViewFields implements core.DeltaAssigner. FIFO's read set is
// admission order (SLO, Submit, ID, Running, NumGPUs) plus the vetted
// allocators' storage inputs (Profile, DatasetKey/Size, SLO weights,
// CachedBytes, EffectiveCached): job progress never enters, so views
// differing only in RemainingBytes/AttainedBytes — which advance every
// integration step — reproduce the memoized assignment exactly. The
// claim is only as good as Assign staying pure, which the requires
// marker ties to the machine-checked annotation; the relevance fuzz
// test (TestIgnoredFieldsIrrelevant) cross-checks the mask itself.
//
// silod:pure-requires: (*FIFO).Assign
func (f *FIFO) IgnoredViewFields() core.ViewFields {
	return core.FieldRemainingBytes | core.FieldAttainedBytes
}

// IgnoredViewFields implements core.DeltaAssigner. The SJF score reads
// RemainingBytes (remaining duration) but never AttainedBytes, and the
// score order — not submit order or current running state — alone
// decides admission.
//
// silod:pure-requires: (*SJF).Assign
func (s *SJF) IgnoredViewFields() core.ViewFields {
	return core.FieldAttainedBytes | core.FieldSubmit | core.FieldRunning
}

// IgnoredViewFields implements core.DeltaAssigner. Only the
// TotalThroughput objective is pure (see PureAssign); its score and
// storage greedy read capacity and cache state but never job progress.
//
// silod:pure-requires: (*Gavel).assignThroughput, throughputKey
func (g *Gavel) IgnoredViewFields() core.ViewFields {
	return core.FieldRemainingBytes | core.FieldAttainedBytes | core.FieldSubmit
}

var (
	_ core.PureAssigner  = (*FIFO)(nil)
	_ core.PureAssigner  = (*SJF)(nil)
	_ core.PureAssigner  = (*Gavel)(nil)
	_ core.DeltaAssigner = (*FIFO)(nil)
	_ core.DeltaAssigner = (*SJF)(nil)
	_ core.DeltaAssigner = (*Gavel)(nil)
	_ core.FullResolver  = (*Gavel)(nil)
)
