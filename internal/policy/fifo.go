package policy

import (
	"repro/internal/core"
	"repro/internal/unit"
)

// admitGangs grants GPUs to jobs in the given order, all-or-nothing per
// gang, first-fit (a job too large for the remaining GPUs is skipped
// rather than blocking the queue, as DL cluster schedulers do). Grants
// are written into the provided map (only admitted jobs appear), so
// policies can recycle one assignment's maps across rounds.
//
// silod:pure
func admitGangs(grants map[string]int, totalGPUs int, ordered []core.JobView) {
	free := totalGPUs
	for _, j := range ordered {
		if j.NumGPUs <= free {
			grants[j.ID] = j.NumGPUs
			free -= j.NumGPUs
		}
	}
}

// runningFirst returns jobs reordered so currently running jobs come
// first (in queue order), implementing non-preemptive admission.
//
// silod:pure
func runningFirst(ordered []core.JobView) []core.JobView {
	return runningFirstInto(nil, ordered)
}

// runningFirstInto is runningFirst with a caller-owned destination
// buffer (reused via dst[:0]).
//
// silod:pure
func runningFirstInto(dst []core.JobView, ordered []core.JobView) []core.JobView {
	out := dst[:0]
	for _, j := range ordered {
		if j.Running {
			out = append(out, j)
		}
	}
	for _, j := range ordered {
		if !j.Running {
			out = append(out, j)
		}
	}
	return out
}

// admittedViews filters jobs down to those with a GPU grant.
//
// silod:pure
func admittedViews(jobs []core.JobView, grants map[string]int) []core.JobView {
	return admittedViewsInto(nil, jobs, grants)
}

// admittedViewsInto is admittedViews with a caller-owned destination
// buffer (reused via dst[:0]).
//
// silod:pure
func admittedViewsInto(dst []core.JobView, jobs []core.JobView, grants map[string]int) []core.JobView {
	out := dst[:0]
	for _, j := range jobs {
		if grants[j.ID] > 0 {
			out = append(out, j)
		}
	}
	return out
}

// FIFO admits jobs in submission order without preemption and delegates
// storage to the configured allocator. With Storage set to
// GreedyAllocator this is FIFO-SiloD (§5.3: SiloD follows the FIFO
// order and allocates cache/remote IO for the scheduled jobs); with a
// baseline allocator it reproduces the paper's FIFO-on-Alluxio /
// CoorDL / Quiver configurations.
type FIFO struct {
	Storage StorageAllocator

	// scratch's maps are recycled across Assign calls; each returned
	// Assignment is valid only until the next Assign. The view buffers
	// below are likewise per-call scratch.
	scratch  core.Assignment
	sortBuf  []core.JobView
	ordBuf   []core.JobView
	admitBuf []core.JobView
}

// Name implements core.Policy.
func (f *FIFO) Name() string { return "fifo+" + f.Storage.Name() }

// Assign implements core.Policy. The annotation is what PureAssign's
// claim rests on: admission order is a function of the views alone,
// so purity reduces to the allocator's — which is exactly what the
// assume= clause delegates to the runtime vetting in pure.go.
//
// silod:pure assume=StorageAllocator,QueueAwareAllocator
func (f *FIFO) Assign(c core.Cluster, now unit.Time, jobs []core.JobView) core.Assignment {
	a := f.scratch.Reset()
	f.sortBuf = core.SortJobsInto(f.sortBuf, jobs)
	f.ordBuf = runningFirstInto(f.ordBuf, f.sortBuf)
	admitGangs(a.GPUs, c.GPUs, f.ordBuf)
	f.admitBuf = admittedViewsInto(f.admitBuf, jobs, a.GPUs)
	running := f.admitBuf
	if qa, ok := f.Storage.(QueueAwareAllocator); ok {
		var queued []core.JobView
		for _, j := range jobs {
			if a.GPUs[j.ID] == 0 {
				queued = append(queued, j)
			}
		}
		qa.AllocateStorageQueued(c, running, queued, &a)
		return a
	}
	f.Storage.AllocateStorage(c, running, &a)
	return a
}

var _ core.Policy = (*FIFO)(nil)
