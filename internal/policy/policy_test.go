package policy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/simrng"
	"repro/internal/unit"
)

func mkView(id string, gpus int, dsKey string, dsSize unit.Bytes, fstar unit.Bandwidth) core.JobView {
	return core.JobView{
		ID:         id,
		NumGPUs:    gpus,
		Profile:    estimator.JobProfile{IdealThroughput: fstar, DatasetSize: dsSize},
		DatasetKey: dsKey, DatasetSize: dsSize,
		RemainingBytes: 10 * dsSize,
	}
}

func cl8() core.Cluster {
	return core.Cluster{GPUs: 8, Cache: unit.GiB(200), RemoteIO: unit.MBpsOf(200)}
}

// TestGreedyAlgorithm2Ordering checks Algorithm 2: cache goes to
// datasets in descending cache-efficiency order with partial caching.
func TestGreedyAlgorithm2Ordering(t *testing.T) {
	jobs := []core.JobView{
		mkView("eff", 1, "small", unit.GiB(50), unit.MBpsOf(100)),   // 2.0 MB/s/GB
		mkView("mid", 1, "medium", unit.GiB(100), unit.MBpsOf(100)), // 1.0
		mkView("low", 1, "huge", unit.GiB(400), unit.MBpsOf(100)),   // 0.25
	}
	a := core.NewAssignment()
	for i := range jobs {
		a.GPUs[jobs[i].ID] = jobs[i].NumGPUs
	}
	GreedyAllocator{}.AllocateStorage(cl8(), jobs, &a)
	if a.CacheQuota["small"] != unit.GiB(50) {
		t.Errorf("small quota %v, want full", a.CacheQuota["small"])
	}
	if a.CacheQuota["medium"] != unit.GiB(100) {
		t.Errorf("medium quota %v, want full", a.CacheQuota["medium"])
	}
	// Remaining 50 GiB partially caches the huge dataset (unlike
	// Quiver, partial caching is allowed).
	if a.CacheQuota["huge"] != unit.GiB(50) {
		t.Errorf("huge quota %v, want 50GiB partial", a.CacheQuota["huge"])
	}
}

// TestGreedySharedDatasetsChargedOnce checks the §6 sharing rule: the
// efficiency of a shared dataset sums over its jobs and the quota is
// charged once.
func TestGreedySharedDatasetsChargedOnce(t *testing.T) {
	jobs := []core.JobView{
		mkView("a1", 1, "shared", unit.GiB(150), unit.MBpsOf(60)),
		mkView("a2", 1, "shared", unit.GiB(150), unit.MBpsOf(60)),
		mkView("b", 1, "solo", unit.GiB(150), unit.MBpsOf(100)),
	}
	a := core.NewAssignment()
	for i := range jobs {
		a.GPUs[jobs[i].ID] = 1
	}
	// Cache fits only one dataset: shared (summed eff 0.8) must beat
	// solo (0.67).
	c := core.Cluster{GPUs: 8, Cache: unit.GiB(150), RemoteIO: unit.MBpsOf(200)}
	GreedyAllocator{}.AllocateStorage(c, jobs, &a)
	if a.CacheQuota["shared"] != unit.GiB(150) {
		t.Errorf("shared quota %v, want full (summed efficiency wins)", a.CacheQuota["shared"])
	}
	if a.CacheQuota["solo"] != 0 {
		t.Errorf("solo quota %v, want 0", a.CacheQuota["solo"])
	}
}

// TestGreedyEffectiveAwareIO checks the warm-up-aware IO sizing: a job
// whose quota is not yet effective needs its full cold demand.
func TestGreedyEffectiveAwareIO(t *testing.T) {
	jobs := []core.JobView{mkView("a", 1, "ds", unit.GiB(100), unit.MBpsOf(100))}
	a := core.NewAssignment()
	a.GPUs["a"] = 1
	GreedyAllocator{}.AllocateStorage(cl8(), jobs, &a)
	// Quota is full but nothing is effective yet: demand is the full f*.
	if got := a.RemoteIO["a"].MBpsValue(); math.Abs(got-100) > 1e-6 {
		t.Errorf("cold job granted %v, want full demand 100", got)
	}
	// Once effective, demand drops to zero.
	jobs[0].EffectiveCached = unit.GiB(100)
	jobs[0].CachedBytes = unit.GiB(100)
	a2 := core.NewAssignment()
	a2.GPUs["a"] = 1
	GreedyAllocator{}.AllocateStorage(cl8(), jobs, &a2)
	if got := a2.RemoteIO["a"].MBpsValue(); got > 1e-6 {
		t.Errorf("warm job granted %v, want 0", got)
	}
}

func TestQuiverWholeDatasetOnly(t *testing.T) {
	q := NewQuiverAllocator(0, 1)
	jobs := []core.JobView{
		mkView("big", 1, "big", unit.GiB(180), unit.MBpsOf(300)),
		mkView("small", 1, "small", unit.GiB(50), unit.MBpsOf(50)),
	}
	a := core.NewAssignment()
	for i := range jobs {
		a.GPUs[jobs[i].ID] = 1
	}
	// 100 GiB pool: big (benefit/cost 1.67) would be first but does
	// not fit whole; Quiver skips it (no partial caching) and caches
	// small instead.
	c := core.Cluster{GPUs: 8, Cache: unit.GiB(100), RemoteIO: unit.MBpsOf(100)}
	q.AllocateStorage(c, jobs, &a)
	if a.CacheQuota["big"] != 0 {
		t.Errorf("big quota %v, want 0 (no partial caching)", a.CacheQuota["big"])
	}
	if a.CacheQuota["small"] != unit.GiB(50) {
		t.Errorf("small quota %v, want full", a.CacheQuota["small"])
	}
	// Quiver never sets remote IO (scheduler-oblivious).
	if len(a.RemoteIO) != 0 {
		t.Error("Quiver set remote IO allocations")
	}
}

func TestQuiverHysteresisStabilizes(t *testing.T) {
	q := NewQuiverAllocator(0.05, 7)
	mk := func(cachedFrac float64) []core.JobView {
		a := mkView("a", 1, "ds-a", unit.GiB(100), unit.MBpsOf(100))
		b := mkView("b", 1, "ds-b", unit.GiB(100), unit.MBpsOf(100))
		a.CachedBytes = unit.Bytes(cachedFrac * float64(unit.GiB(100)))
		return []core.JobView{a, b}
	}
	c := core.Cluster{GPUs: 8, Cache: unit.GiB(100), RemoteIO: unit.MBpsOf(100)}
	flips := 0
	for round := 0; round < 200; round++ {
		a := core.NewAssignment()
		a.GPUs["a"], a.GPUs["b"] = 1, 1
		q.AllocateStorage(c, mk(1.0), &a) // ds-a fully cached
		if a.CacheQuota["ds-a"] == 0 {
			flips++
		}
	}
	if flips > 10 {
		t.Errorf("fully cached dataset displaced %d/200 rounds; hysteresis too weak", flips)
	}
}

func TestCoorDLProportionalPrivateQuotas(t *testing.T) {
	jobs := []core.JobView{
		mkView("one", 1, "ds", unit.GiB(500), unit.MBpsOf(100)),
		mkView("four", 4, "ds", unit.GiB(500), unit.MBpsOf(100)),
	}
	a := core.NewAssignment()
	a.GPUs["one"], a.GPUs["four"] = 1, 4
	c := core.Cluster{GPUs: 8, Cache: unit.GiB(800), RemoteIO: unit.MBpsOf(100)}
	CoorDLAllocator{}.AllocateStorage(c, jobs, &a)
	if got := a.CacheQuota[CoorDLKey("one")]; got != unit.GiB(100) {
		t.Errorf("1-GPU quota %v, want 100GiB", got)
	}
	if got := a.CacheQuota[CoorDLKey("four")]; got != unit.GiB(400) {
		t.Errorf("4-GPU quota %v, want 400GiB", got)
	}
	// Quotas are private: even though both train "ds", the keys differ.
	if _, shared := a.CacheQuota["ds"]; shared {
		t.Error("CoorDL used a shared dataset key")
	}
	// Quota never exceeds the dataset.
	small := []core.JobView{mkView("s", 4, "tiny", unit.GiB(10), unit.MBpsOf(10))}
	a2 := core.NewAssignment()
	a2.GPUs["s"] = 4
	CoorDLAllocator{}.AllocateStorage(c, small, &a2)
	if got := a2.CacheQuota[CoorDLKey("s")]; got != unit.GiB(10) {
		t.Errorf("quota %v exceeds dataset", got)
	}
}

func TestFIFOOrderAndNonPreemption(t *testing.T) {
	f := &FIFO{Storage: AlluxioAllocator{}}
	jobs := []core.JobView{
		mkView("late", 6, "d1", unit.GiB(10), unit.MBpsOf(10)),
		mkView("early", 6, "d2", unit.GiB(10), unit.MBpsOf(10)),
	}
	jobs[0].Submit = 100
	jobs[1].Submit = 50
	a := f.Assign(cl8(), 200, jobs)
	if a.GPUs["early"] != 6 || a.GPUs["late"] != 0 {
		t.Errorf("FIFO admitted %v", a.GPUs)
	}
	// A running job is never preempted by an earlier-submitted arrival.
	jobs[0].Running = true // late is running now
	a = f.Assign(cl8(), 300, jobs)
	if a.GPUs["late"] != 6 || a.GPUs["early"] != 0 {
		t.Errorf("FIFO preempted a running job: %v", a.GPUs)
	}
}

func TestFIFOFirstFitSkipsBlockedHead(t *testing.T) {
	f := &FIFO{Storage: AlluxioAllocator{}}
	jobs := []core.JobView{
		mkView("big", 6, "d1", unit.GiB(10), unit.MBpsOf(10)),
		mkView("huge", 8, "d2", unit.GiB(10), unit.MBpsOf(10)),
		mkView("small", 2, "d3", unit.GiB(10), unit.MBpsOf(10)),
	}
	jobs[0].Submit, jobs[1].Submit, jobs[2].Submit = 1, 2, 3
	a := f.Assign(cl8(), 10, jobs)
	if a.GPUs["big"] != 6 || a.GPUs["huge"] != 0 || a.GPUs["small"] != 2 {
		t.Errorf("first-fit: %v", a.GPUs)
	}
}

func TestSJFVanillaOrdersByIdealDuration(t *testing.T) {
	s := &SJF{Enhanced: false, Storage: AlluxioAllocator{}}
	// short: 10 GiB of work at 100 MB/s; long: 100 GiB at 100 MB/s.
	short := mkView("short", 6, "d1", unit.GiB(10), unit.MBpsOf(100))
	short.RemainingBytes = unit.GiB(10)
	long := mkView("long", 6, "d2", unit.GiB(10), unit.MBpsOf(100))
	long.RemainingBytes = unit.GiB(100)
	a := s.Assign(cl8(), 0, []core.JobView{long, short})
	if a.GPUs["short"] != 6 || a.GPUs["long"] != 0 {
		t.Errorf("SJF admitted %v", a.GPUs)
	}
}

// TestSJFEnhancedCorrectsIOBlindOrdering is the paper's §2.2 example:
// vanilla SJF mis-orders an IO-bottlenecked "short" job; the enhanced
// score accounts for the bottleneck.
func TestSJFEnhancedCorrectsIOBlindOrdering(t *testing.T) {
	// ioBound looks fast (f* = 300 MB/s) but has a huge uncacheable
	// dataset and the cluster has little bandwidth: its real duration
	// is long. steady is slower on paper but cache-friendly.
	c := core.Cluster{GPUs: 6, Cache: unit.GiB(100), RemoteIO: unit.MBpsOf(50)}
	ioBound := mkView("iobound", 6, "huge", unit.TiB(4), unit.MBpsOf(300))
	ioBound.RemainingBytes = unit.GiB(300)
	steady := mkView("steady", 6, "small", unit.GiB(100), unit.MBpsOf(100))
	steady.RemainingBytes = unit.GiB(150)

	vanilla := &SJF{Enhanced: false, Storage: AlluxioAllocator{}}
	av := vanilla.Assign(c, 0, []core.JobView{ioBound, steady})
	if av.GPUs["iobound"] != 6 {
		t.Fatalf("vanilla SJF should pick the deceptively fast job: %v", av.GPUs)
	}
	enhanced := &SJF{Enhanced: true}
	ae := enhanced.Assign(c, 0, []core.JobView{ioBound, steady})
	if ae.GPUs["steady"] != 6 {
		t.Errorf("enhanced SJF still picked the IO-bound job: %v", ae.GPUs)
	}
}

func TestGavelDeficitOrdering(t *testing.T) {
	g := &Gavel{Enhanced: false, Storage: AlluxioAllocator{}}
	starved := mkView("starved", 6, "d1", unit.GiB(10), unit.MBpsOf(100))
	starved.Submit = 0
	starved.AttainedBytes = 0
	served := mkView("served", 6, "d2", unit.GiB(10), unit.MBpsOf(100))
	served.Submit = 0
	served.AttainedBytes = unit.GiB(50)
	a := g.Assign(cl8(), 1000, []core.JobView{served, starved})
	if a.GPUs["starved"] != 6 {
		t.Errorf("Gavel did not serve the most underserved job: %v", a.GPUs)
	}
}

func TestMaxMinStorageBeatsEqualDivision(t *testing.T) {
	jobs := []core.JobView{
		mkView("a", 1, "da", unit.GiB(100), unit.MBpsOf(100)),
		mkView("b", 1, "db", unit.GiB(100), unit.MBpsOf(100)),
	}
	out := MaxMinStorage(unit.GiB(100), unit.MBpsOf(60), jobs)
	// Equal division gives each job 50 GiB + 30 MB/s => 60 MB/s. The
	// max-min optimum must not do worse for the minimum job (λ* >= 1).
	equal := estimator.Resources{Cache: unit.GiB(50), RemoteIO: unit.MBpsOf(30)}
	floor := jobs[0].Profile.Perf(equal).MBpsValue()
	minPerf := math.Min(out["a"].Perf.MBpsValue(), out["b"].Perf.MBpsValue())
	if minPerf < floor*(1-1e-6) {
		t.Errorf("max-min optimum %v below the equal-division floor %v", minPerf, floor)
	}
}

// TestMaxMinStorageFeasibility is the solver's core safety property:
// allocations never exceed the budgets.
func TestMaxMinStorageFeasibility(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := simrng.New(seed)
		count := int(n%6) + 1
		jobs := make([]core.JobView, count)
		for i := range jobs {
			jobs[i] = mkView(
				string(rune('a'+i)), 1,
				string(rune('A'+i%3)), // some shared datasets
				unit.Bytes(rng.Uniform(10, 400))*unit.GB,
				unit.Bandwidth(rng.Uniform(5, 300))*unit.MBps,
			)
			jobs[i].DatasetSize = jobs[i].Profile.DatasetSize
			jobs[i].EffectiveCached = unit.Bytes(rng.Uniform(0, float64(jobs[i].DatasetSize)))
			jobs[i].CachedBytes = jobs[i].EffectiveCached
		}
		// Shared keys need consistent sizes.
		sizes := map[string]unit.Bytes{}
		for i := range jobs {
			if s, ok := sizes[jobs[i].DatasetKey]; ok {
				jobs[i].DatasetSize = s
				jobs[i].Profile.DatasetSize = s
			} else {
				sizes[jobs[i].DatasetKey] = jobs[i].DatasetSize
			}
		}
		totalCache := unit.Bytes(rng.Uniform(0, 500)) * unit.GB
		totalIO := unit.Bandwidth(rng.Uniform(1, 300)) * unit.MBps
		out := MaxMinStorage(totalCache, totalIO, jobs)
		quotas := DatasetQuotas(jobs, out)
		var cacheSum unit.Bytes
		for key, q := range quotas {
			if q < 0 || q > sizes[key] {
				return false
			}
			cacheSum += q
		}
		var ioSum unit.Bandwidth
		for _, j := range jobs {
			bw := out[j.ID].RemoteIO
			if bw < 0 {
				return false
			}
			ioSum += bw
		}
		return float64(cacheSum) <= float64(totalCache)*(1+1e-6)+1 &&
			float64(ioSum) <= float64(totalIO)*(1+1e-6)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMaxMinBandwidthTargetsEqualizeNormalizedPerf(t *testing.T) {
	c := core.Cluster{GPUs: 4, Cache: unit.GiB(100), RemoteIO: unit.MBpsOf(60)}
	jobs := []core.JobView{
		mkView("a", 1, "da", unit.GiB(100), unit.MBpsOf(100)),
		mkView("b", 1, "db", unit.GiB(400), unit.MBpsOf(100)),
	}
	quotas := map[string]unit.Bytes{"da": 0, "db": 0}
	grants := MaxMinBandwidth(c, c.RemoteIO, jobs, quotas)
	var total unit.Bandwidth
	for _, g := range grants {
		total += g
	}
	if float64(total) > float64(c.RemoteIO)*(1+1e-9) {
		t.Fatalf("oversubscribed: %v", total)
	}
	// Normalized rates (grant / perfEqual) should be equal when neither
	// job saturates.
	n := 2.0
	equal := estimator.Resources{Cache: unit.Bytes(float64(c.Cache) / n), RemoteIO: unit.Bandwidth(float64(c.RemoteIO) / n)}
	ra := float64(grants["a"]) / float64(jobs[0].Profile.Perf(equal))
	rb := float64(grants["b"]) / float64(jobs[1].Profile.Perf(equal))
	if math.Abs(ra-rb)/math.Max(ra, rb) > 0.02 {
		t.Errorf("normalized grants differ: %v vs %v", ra, rb)
	}
}

// TestBuiltPoliciesProduceValidAssignments fuzzes every (scheduler,
// system) pair against Assignment.Validate.
func TestBuiltPoliciesProduceValidAssignments(t *testing.T) {
	rng := simrng.New(99)
	for _, k := range AllSchedulerKinds() {
		for _, cs := range AllCacheSystems() {
			pol, err := Build(k, cs, 1)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 25; trial++ {
				n := rng.Intn(12) + 1
				jobs := make([]core.JobView, n)
				for i := range jobs {
					key := string(rune('A' + rng.Intn(6)))
					size := unit.Bytes(rng.Uniform(10, 400)) * unit.GB
					jobs[i] = mkView(string(rune('a'+i)), []int{1, 2, 4, 8}[rng.Intn(4)],
						key, size, unit.Bandwidth(rng.Uniform(2, 300))*unit.MBps)
					jobs[i].Submit = unit.Time(rng.Uniform(0, 1000))
					jobs[i].AttainedBytes = unit.Bytes(rng.Uniform(0, float64(jobs[i].RemainingBytes)))
					jobs[i].Running = rng.Float64() < 0.5
				}
				// Shared keys need one size.
				sizes := map[string]unit.Bytes{}
				for i := range jobs {
					if s, ok := sizes[jobs[i].DatasetKey]; ok {
						jobs[i].DatasetSize = s
						jobs[i].Profile.DatasetSize = s
					} else {
						sizes[jobs[i].DatasetKey] = jobs[i].DatasetSize
					}
					jobs[i].EffectiveCached = unit.Bytes(rng.Uniform(0, float64(jobs[i].DatasetSize)))
					jobs[i].CachedBytes = jobs[i].EffectiveCached
				}
				c := core.Cluster{
					GPUs:     rng.Intn(16) + 8,
					Cache:    unit.Bytes(rng.Uniform(0, 800)) * unit.GB,
					RemoteIO: unit.Bandwidth(rng.Uniform(1, 500)) * unit.MBps,
				}
				a := pol.Assign(c, unit.Time(rng.Uniform(0, 2000)), jobs)
				if err := a.Validate(c, jobs); err != nil {
					t.Fatalf("%v/%v trial %d: %v", k, cs, trial, err)
				}
			}
		}
	}
}

func TestParseRoundTrips(t *testing.T) {
	for _, cs := range AllCacheSystems() {
		got, err := ParseCacheSystem(cs.String())
		if err != nil || got != cs {
			t.Errorf("ParseCacheSystem(%v) = %v, %v", cs, got, err)
		}
	}
	for _, k := range AllSchedulerKinds() {
		got, err := ParseSchedulerKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseSchedulerKind(%v) = %v, %v", k, got, err)
		}
	}
	if _, err := ParseCacheSystem("bogus"); err == nil {
		t.Error("bogus cache system parsed")
	}
	if _, err := ParseSchedulerKind("bogus"); err == nil {
		t.Error("bogus scheduler parsed")
	}
}

func TestSystemTraits(t *testing.T) {
	if !Alluxio.UsesLRU() || SiloD.UsesLRU() {
		t.Error("UsesLRU")
	}
	if !CoorDL.PrivateCaches() || Quiver.PrivateCaches() {
		t.Error("PrivateCaches")
	}
	if !SiloD.ControlsRemoteIO() || Alluxio.ControlsRemoteIO() {
		t.Error("ControlsRemoteIO")
	}
}

func TestGavelObjectiveOrdering(t *testing.T) {
	c := cl8()
	// Job "hot" is cache-warm with high f* per GPU; "cold" is a big
	// gang with nothing cached.
	hot := mkView("hot", 1, "dh", unit.GiB(100), unit.MBpsOf(200))
	hot.EffectiveCached = unit.GiB(100)
	hot.CachedBytes = unit.GiB(100)
	cold := mkView("cold", 8, "dc", unit.GiB(100), unit.MBpsOf(200))

	tp := &Gavel{Enhanced: true, Objective: TotalThroughput}
	a := tp.Assign(c, 100, []core.JobView{cold, hot})
	if a.GPUs["hot"] != 1 {
		t.Errorf("throughput objective skipped the cache-hot efficient job: %v", a.GPUs)
	}

	// Finish-time fairness: the job far beyond its ideal finish runs
	// first.
	wronged := mkView("wronged", 6, "dw", unit.GiB(50), unit.MBpsOf(100))
	wronged.Submit = 0
	wronged.AttainedBytes = unit.GiB(1)
	wronged.RemainingBytes = unit.GiB(49)
	fine := mkView("fine", 6, "df", unit.GiB(50), unit.MBpsOf(100))
	fine.Submit = 0
	fine.AttainedBytes = unit.GiB(400)
	fine.RemainingBytes = unit.GiB(100)
	ftf := &Gavel{Enhanced: true, Objective: FinishTimeFairness}
	a = ftf.Assign(c, 5000, []core.JobView{fine, wronged})
	if a.GPUs["wronged"] != 6 {
		t.Errorf("FTF objective did not serve the most wronged job: %v", a.GPUs)
	}
}

func TestGavelObjectiveNames(t *testing.T) {
	for _, o := range []GavelObjective{MaxMinFairness, TotalThroughput, FinishTimeFairness} {
		g := &Gavel{Enhanced: true, Objective: o}
		if g.Name() == "" {
			t.Error("empty name")
		}
	}
	g := &Gavel{Storage: AlluxioAllocator{}, Objective: TotalThroughput}
	if g.Name() != "gavel[throughput]+alluxio" {
		t.Errorf("name = %q", g.Name())
	}
}

// TestGavelObjectivesProduceValidAssignments extends the fuzz coverage
// to the non-default objectives.
func TestGavelObjectivesProduceValidAssignments(t *testing.T) {
	rng := simrng.New(123)
	for _, obj := range []GavelObjective{TotalThroughput, FinishTimeFairness} {
		pol := &Gavel{Enhanced: true, Objective: obj}
		for trial := 0; trial < 25; trial++ {
			n := rng.Intn(10) + 1
			jobs := make([]core.JobView, n)
			for i := range jobs {
				size := unit.Bytes(rng.Uniform(10, 400)) * unit.GB
				jobs[i] = mkView(string(rune('a'+i)), []int{1, 2, 4}[rng.Intn(3)],
					string(rune('A'+rng.Intn(4))), size,
					unit.Bandwidth(rng.Uniform(2, 300))*unit.MBps)
				jobs[i].AttainedBytes = unit.Bytes(rng.Uniform(0, float64(jobs[i].RemainingBytes)))
				jobs[i].Running = rng.Float64() < 0.5
			}
			sizes := map[string]unit.Bytes{}
			for i := range jobs {
				if s, ok := sizes[jobs[i].DatasetKey]; ok {
					jobs[i].DatasetSize = s
					jobs[i].Profile.DatasetSize = s
				} else {
					sizes[jobs[i].DatasetKey] = jobs[i].DatasetSize
				}
				jobs[i].EffectiveCached = unit.Bytes(rng.Uniform(0, float64(jobs[i].DatasetSize)))
				jobs[i].CachedBytes = jobs[i].EffectiveCached
			}
			c := core.Cluster{
				GPUs:     rng.Intn(16) + 4,
				Cache:    unit.Bytes(rng.Uniform(0, 800)) * unit.GB,
				RemoteIO: unit.Bandwidth(rng.Uniform(1, 500)) * unit.MBps,
			}
			a := pol.Assign(c, unit.Time(rng.Uniform(1, 2000)), jobs)
			if err := a.Validate(c, jobs); err != nil {
				t.Fatalf("%v trial %d: %v", obj, trial, err)
			}
		}
	}
}

// TestMaxMinBandwidthProperties: the bandwidth program never
// oversubscribes and is monotone in the budget.
func TestMaxMinBandwidthProperties(t *testing.T) {
	rng := simrng.New(77)
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(8) + 1
		jobs := make([]core.JobView, n)
		quotas := map[string]unit.Bytes{}
		for i := range jobs {
			size := unit.Bytes(rng.Uniform(10, 400)) * unit.GB
			jobs[i] = mkView(string(rune('a'+i)), 1, string(rune('A'+i)), size,
				unit.Bandwidth(rng.Uniform(2, 300))*unit.MBps)
			jobs[i].EffectiveCached = unit.Bytes(rng.Uniform(0, float64(size)))
			quotas[jobs[i].DatasetKey] = unit.Bytes(rng.Uniform(0, float64(size)))
		}
		c := core.Cluster{GPUs: 8,
			Cache:    unit.Bytes(rng.Uniform(0, 800)) * unit.GB,
			RemoteIO: unit.Bandwidth(rng.Uniform(1, 400)) * unit.MBps}
		small := MaxMinBandwidth(c, c.RemoteIO/2, jobs, quotas)
		large := MaxMinBandwidth(c, c.RemoteIO, jobs, quotas)
		var sumSmall, sumLarge unit.Bandwidth
		for _, j := range jobs {
			if small[j.ID] < 0 || large[j.ID] < 0 {
				t.Fatalf("trial %d: negative grant", trial)
			}
			sumSmall += small[j.ID]
			sumLarge += large[j.ID]
			// Monotonicity: more budget never shrinks a grant (the
			// normalized level only rises).
			if float64(small[j.ID]) > float64(large[j.ID])*(1+1e-9)+1 {
				t.Fatalf("trial %d: grant shrank with larger budget: %v -> %v",
					trial, small[j.ID], large[j.ID])
			}
		}
		if float64(sumSmall) > float64(c.RemoteIO)/2*(1+1e-6)+1 ||
			float64(sumLarge) > float64(c.RemoteIO)*(1+1e-6)+1 {
			t.Fatalf("trial %d: oversubscribed (%v of %v)", trial, sumLarge, c.RemoteIO)
		}
	}
}

// TestGreedyQueuedPrefetchPlanning: the queue-aware allocator funds
// queued datasets only from leftover cache, in efficiency order.
func TestGreedyQueuedPrefetchPlanning(t *testing.T) {
	g := GreedyAllocator{PrefetchQueued: true}
	running := []core.JobView{mkView("r", 1, "run-ds", unit.GiB(60), unit.MBpsOf(100))}
	queued := []core.JobView{
		mkView("q1", 1, "q-eff", unit.GiB(20), unit.MBpsOf(100)), // 5.0 MB/s/GB
		mkView("q2", 1, "q-big", unit.GiB(100), unit.MBpsOf(50)), // 0.5
	}
	a := core.NewAssignment()
	a.GPUs["r"] = 1
	c := core.Cluster{GPUs: 8, Cache: unit.GiB(100), RemoteIO: unit.MBpsOf(200)}
	g.AllocateStorageQueued(c, running, queued, &a)
	if a.CacheQuota["run-ds"] != unit.GiB(60) {
		t.Fatalf("running dataset underfunded: %v", a.CacheQuota["run-ds"])
	}
	if a.CacheQuota["q-eff"] != unit.GiB(20) {
		t.Errorf("efficient queued dataset got %v, want full", a.CacheQuota["q-eff"])
	}
	if a.CacheQuota["q-big"] != unit.GiB(20) {
		t.Errorf("remaining leftover should partially fund q-big: %v", a.CacheQuota["q-big"])
	}
	var sum unit.Bytes
	for _, q := range a.CacheQuota {
		sum += q
	}
	if sum > c.Cache {
		t.Errorf("prefetch planning oversubscribed cache: %v", sum)
	}
	// Without the flag, queued datasets receive nothing.
	plain := core.NewAssignment()
	plain.GPUs["r"] = 1
	GreedyAllocator{}.AllocateStorageQueued(c, running, queued, &plain)
	if _, ok := plain.CacheQuota["q-eff"]; ok {
		t.Error("prefetch disabled but queued dataset funded")
	}
}
