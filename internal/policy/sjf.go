package policy

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/unit"
)

// SJF is multi-resource shortest-job-first (Tetris [30] / Tiresias [34]
// unified, §5.1): each job's score is its weighted resource footprint
// multiplied by its remaining duration (Eq. 6), and jobs are scheduled
// in ascending score order.
//
// In the vanilla form the performance estimator ignores storage, so the
// score is (g/G) · remaining/f* and cache/remote IO come from the
// configured baseline allocator. In the Enhanced form the estimator is
// SiloDPerf (Eq. 7): the score minimizes over cache allocations —
// because the footprint is linear in c the minimum is at c = 0 or
// c = d — and the policy then allocates each admitted job its
// score-minimizing storage in score order, which implicitly favors
// cache-efficient jobs (§5.1).
type SJF struct {
	Enhanced bool
	// Storage is the baseline allocator used when Enhanced is false.
	Storage StorageAllocator

	// scratch's maps are recycled across Assign calls; each returned
	// Assignment is valid only until the next Assign. The buffers below
	// are likewise per-call scratch.
	scratch  core.Assignment
	items    []sjfScored
	ordBuf   []core.JobView
	admitBuf []core.JobView
	rankBuf  map[string]int
}

// sjfScored is one job with its Eq. 6/7 score, the unit SJF sorts.
type sjfScored struct {
	view      core.JobView
	score     float64
	wantCache unit.Bytes
}

// Name implements core.Policy.
func (s *SJF) Name() string {
	if s.Enhanced {
		return "sjf+silod"
	}
	return "sjf+" + s.Storage.Name()
}

// sjfScore evaluates Eq. 6/7 for one job, returning the score and the
// score-minimizing cache choice (0 or the full dataset). Weights are
// w_t = 1/totalResource[t] per Tetris [30].
//
// silod:pure
func sjfScore(c core.Cluster, j core.JobView, enhanced bool) (score float64, wantCache unit.Bytes) {
	g := float64(j.NumGPUs) / math.Max(float64(c.GPUs), 1)
	fstar := float64(j.Profile.IdealThroughput)
	rem := float64(j.RemainingBytes)
	if fstar <= 0 {
		return math.Inf(1), 0
	}
	duration := rem / fstar
	if !enhanced {
		return g * duration, 0
	}
	d := float64(j.DatasetSize)
	wc := 1 / math.Max(float64(c.Cache), 1)
	wb := 1 / math.Max(float64(c.RemoteIO), 1)
	// c = 0: footprint g/G + f*·w_b (full remote IO demand).
	score0 := (g + wb*fstar) * duration
	// c = d: footprint g/G + d·w_c (no remote IO needed).
	scoreD := (g + wc*d) * duration
	if scoreD < score0 {
		return scoreD, unit.Bytes(d)
	}
	return score0, 0
}

// Assign implements core.Policy. SJF is preemptive at scheduling-round
// granularity, as in Tiresias: the score order alone decides who runs.
// The Eq. 6/7 score never consults `now` (remaining duration comes
// from RemainingBytes), which is what PureAssign's claim rests on.
//
// silod:pure assume=StorageAllocator
func (s *SJF) Assign(c core.Cluster, now unit.Time, jobs []core.JobView) core.Assignment {
	a := s.scratch.Reset()
	items := s.items[:0]
	for _, j := range jobs {
		sc, want := sjfScore(c, j, s.Enhanced)
		items = append(items, sjfScored{j, sc, want})
	}
	s.items = items
	sort.Slice(items, func(i, j int) bool {
		if items[i].score != items[j].score {
			return items[i].score < items[j].score
		}
		return items[i].view.ID < items[j].view.ID
	})
	ordered := s.ordBuf[:0]
	for _, it := range items {
		ordered = append(ordered, it.view)
	}
	s.ordBuf = ordered
	admitGangs(a.GPUs, c.GPUs, ordered)

	s.admitBuf = admittedViewsInto(s.admitBuf, jobs, a.GPUs)
	running := s.admitBuf
	if !s.Enhanced {
		s.Storage.AllocateStorage(c, running, &a)
		return a
	}

	// Integrated storage allocation in score order: each admitted job
	// receives its score-minimizing cache (partial if the pool is
	// nearly full — Eq. 4 still benefits from partial caching) and the
	// remote IO to stay compute-bound.
	remCache := c.Cache
	for _, it := range items {
		if a.GPUs[it.view.ID] == 0 {
			continue
		}
		key := it.view.DatasetKey
		have := a.CacheQuota[key]
		want := it.wantCache
		if want > it.view.DatasetSize {
			want = it.view.DatasetSize
		}
		if want > have {
			extra := want - have
			if extra > remCache {
				extra = remCache
			}
			a.CacheQuota[key] = have + extra
			remCache -= extra
		}
	}
	// Remote IO in score order: the jobs SJF wants done first get their
	// demand first, so their warm-up (and completion) is never gated on
	// an equal split.
	if s.rankBuf == nil {
		s.rankBuf = make(map[string]int, len(items))
	} else {
		clear(s.rankBuf)
	}
	scoreRank := s.rankBuf
	for i, it := range items {
		scoreRank[it.view.ID] = i
	}
	allocRemoteIOPriority(c.RemoteIO, running, &a, func(x, y core.JobView) bool {
		return scoreRank[x.ID] < scoreRank[y.ID]
	})
	return a
}

var _ core.Policy = (*SJF)(nil)
