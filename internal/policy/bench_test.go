package policy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/simrng"
	"repro/internal/unit"
)

func benchJobs(n int) []core.JobView {
	rng := simrng.New(7)
	jobs := make([]core.JobView, n)
	for i := range jobs {
		size := unit.Bytes(rng.Uniform(100, 1500)) * unit.GB
		jobs[i] = core.JobView{
			ID:      string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260)),
			NumGPUs: []int{1, 2, 4, 8}[rng.Intn(4)],
			Profile: estimator.JobProfile{
				IdealThroughput: unit.Bandwidth(rng.Uniform(2, 300)) * unit.MBps,
				DatasetSize:     size,
			},
			DatasetKey:     "ds-" + string(rune('a'+i)),
			DatasetSize:    size,
			RemainingBytes: 10 * size,
			Running:        true,
		}
	}
	return jobs
}

func BenchmarkMaxMinStorage(b *testing.B) {
	jobs := benchJobs(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxMinStorage(unit.TiB(100), unit.GBpsOf(4), jobs)
	}
}

func BenchmarkGreedyAllocate(b *testing.B) {
	jobs := benchJobs(200)
	c := core.Cluster{GPUs: 400, Cache: unit.TiB(100), RemoteIO: unit.GBpsOf(4)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.NewAssignment()
		for j := range jobs {
			a.GPUs[jobs[j].ID] = jobs[j].NumGPUs
		}
		GreedyAllocator{}.AllocateStorage(c, jobs, &a)
	}
}

func BenchmarkGavelAssign(b *testing.B) {
	jobs := benchJobs(200)
	g := &Gavel{Enhanced: true}
	c := core.Cluster{GPUs: 400, Cache: unit.TiB(100), RemoteIO: unit.GBpsOf(4)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Assign(c, unit.Time(i), jobs)
	}
}

// BenchmarkFIFOAssignSteadyState measures the per-round allocation cost
// of repeated solves over an unchanged job set — the pattern the
// simulators produce between arrivals. The recycled scratch Assignment
// should keep per-round map allocations near zero.
func BenchmarkFIFOAssignSteadyState(b *testing.B) {
	jobs := benchJobs(200)
	f := &FIFO{Storage: GreedyAllocator{}}
	c := core.Cluster{GPUs: 400, Cache: unit.TiB(100), RemoteIO: unit.GBpsOf(4)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Assign(c, unit.Time(i), jobs)
	}
}

// BenchmarkSJFAssignSteadyState is the SJF-enhanced analogue.
func BenchmarkSJFAssignSteadyState(b *testing.B) {
	jobs := benchJobs(200)
	s := &SJF{Enhanced: true}
	c := core.Cluster{GPUs: 400, Cache: unit.TiB(100), RemoteIO: unit.GBpsOf(4)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Assign(c, unit.Time(i), jobs)
	}
}
