// Package workload defines the models, datasets and job traces used by
// the SiloD evaluation. The catalogs encode the measurements reported in
// the paper (Tables 1, 2, 4 and Figure 6); where the paper omits a
// number (AlexNet, EfficientNetB0, InceptionV3 ideal IO) we fill in a
// profiling-plausible value and mark it as estimated.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/unit"
)

// Model describes a neural network's training behaviour as SiloD sees
// it: the only properties that matter to scheduling are the ideal data
// ingestion rate f* (when IO is not the bottleneck) and the shape of a
// training step. Forward/backward math never appears — exactly the
// reduction the paper's "GPU acceleration" methodology makes.
type Model struct {
	Name string
	// IdealIOPerGPU is f* per V100 GPU: the data loading throughput the
	// model consumes when compute is the bottleneck (Figure 6 caption).
	IdealIOPerGPU unit.Bandwidth
	// BytesPerItem is the average size of one training sample.
	BytesPerItem unit.Bytes
	// BatchItems is the number of samples per mini-batch per GPU.
	BatchItems int
	// Estimated marks values we filled in because the paper does not
	// report them.
	Estimated bool
}

// StepBytes is the data consumed by one mini-batch on one GPU.
func (m Model) StepBytes() unit.Bytes {
	return m.BytesPerItem * unit.Bytes(m.BatchItems)
}

// StepTime is the compute time of one mini-batch on one V100 GPU: with
// an optimally pipelined loader, a compute-bound job consumes exactly
// StepBytes per StepTime, so StepTime = StepBytes / f*.
func (m Model) StepTime() unit.Duration {
	return unit.DivBandwidth(m.StepBytes(), m.IdealIOPerGPU)
}

// Dataset describes a training dataset. SiloD manages cache at dataset
// granularity (§6 "Dataset sharing").
type Dataset struct {
	Name string
	Size unit.Bytes
}

// Model catalog. Ideal IO demands for ResNet-50 (114 MB/s), ResNet-152
// (43 MB/s), EfficientNetB1 (69 MB/s), VLAD (10 MB/s) and BERT (2 MB/s)
// are from the Figure 6 caption; the rest are estimates in the same
// regime. Image samples average ~114 KB (Table 2: 114 MB/s at 1003
// images/s on one V100).
var modelCatalog = []Model{
	{Name: "ResNet-50", IdealIOPerGPU: unit.MBpsOf(114), BytesPerItem: 114 * unit.KB, BatchItems: 128},
	{Name: "ResNet-152", IdealIOPerGPU: unit.MBpsOf(43), BytesPerItem: 114 * unit.KB, BatchItems: 128},
	{Name: "EfficientNetB1", IdealIOPerGPU: unit.MBpsOf(69), BytesPerItem: 114 * unit.KB, BatchItems: 128},
	{Name: "EfficientNetB0", IdealIOPerGPU: unit.MBpsOf(90), BytesPerItem: 114 * unit.KB, BatchItems: 128, Estimated: true},
	{Name: "AlexNet", IdealIOPerGPU: unit.MBpsOf(310), BytesPerItem: 114 * unit.KB, BatchItems: 256, Estimated: true},
	{Name: "InceptionV3", IdealIOPerGPU: unit.MBpsOf(52), BytesPerItem: 114 * unit.KB, BatchItems: 128, Estimated: true},
	{Name: "VLAD", IdealIOPerGPU: unit.MBpsOf(10), BytesPerItem: 1 * unit.MB, BatchItems: 32},
	{Name: "BERT", IdealIOPerGPU: unit.MBpsOf(2), BytesPerItem: 16 * unit.KB, BatchItems: 64},
}

// Dataset catalog (Table 4).
var datasetCatalog = []Dataset{
	{Name: "ImageNet-1k", Size: unit.GiB(143)},
	{Name: "ImageNet-22k", Size: unit.TiB(1.36)},
	{Name: "OpenImages", Size: unit.GiB(660)},
	{Name: "Youtube-8M", Size: unit.TiB(1.46)},
	{Name: "WebSearch", Size: unit.TiB(20.9)},
}

// ModelByName returns the named model from the catalog.
func ModelByName(name string) (Model, error) {
	for _, m := range modelCatalog {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("workload: unknown model %q", name)
}

// DatasetByName returns the named dataset from the catalog.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range datasetCatalog {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("workload: unknown dataset %q", name)
}

// mustModel resolves a compile-time-known catalog name; a miss is a
// programming error in the caller, not a runtime condition.
func mustModel(name string) Model {
	m, err := ModelByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

// mustDataset is mustModel for datasets.
func mustDataset(name string) Dataset {
	d, err := DatasetByName(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Models returns a copy of the model catalog.
func Models() []Model { return append([]Model(nil), modelCatalog...) }

// Datasets returns a copy of the dataset catalog.
func Datasets() []Dataset { return append([]Dataset(nil), datasetCatalog...) }

// CatalogJob pairs a model with a dataset — one bar of Figure 6.
type CatalogJob struct {
	Model   Model
	Dataset Dataset
}

// CacheEfficiency is f*/d in MB/s per GB (Eq. 5): the remote IO saved
// per unit of cache allocated to this job at its ideal throughput.
func (j CatalogJob) CacheEfficiency() float64 {
	return j.Model.IdealIOPerGPU.MBpsValue() / (float64(j.Dataset.Size) / float64(unit.GB))
}

// Figure6Jobs returns the 11 model/dataset combinations of Figure 6 in
// descending cache-efficiency order, as the figure plots them.
func Figure6Jobs() []CatalogJob {
	imageModels := []string{"ResNet-50", "ResNet-152", "EfficientNetB1"}
	imageData := []string{"ImageNet-1k", "OpenImages", "ImageNet-22k"}
	var jobs []CatalogJob
	for _, mn := range imageModels {
		for _, dn := range imageData {
			jobs = append(jobs, CatalogJob{Model: mustModel(mn), Dataset: mustDataset(dn)})
		}
	}
	jobs = append(jobs,
		CatalogJob{Model: mustModel("VLAD"), Dataset: mustDataset("Youtube-8M")},
		CatalogJob{Model: mustModel("BERT"), Dataset: mustDataset("WebSearch")})
	sort.Slice(jobs, func(i, j int) bool {
		return jobs[i].CacheEfficiency() > jobs[j].CacheEfficiency()
	})
	return jobs
}

// DatasetGrowth is one row of Table 1: dataset sizes at Microsoft in
// early 2020 and their (planned) sizes 24 months later.
type DatasetGrowth struct {
	Task     string
	Year2020 unit.Bytes
	In24Mo   unit.Bytes
}

// Table1DatasetGrowth returns the Table 1 rows.
func Table1DatasetGrowth() []DatasetGrowth {
	return []DatasetGrowth{
		{"Task #1", unit.TiB(25), unit.TiB(100)},
		{"Task #2", unit.GiB(100), unit.TiB(1)},
		{"Task #3", unit.GiB(100), unit.TiB(3)},
		{"Task #4", unit.TiB(5), unit.TiB(10)},
		{"Task #5", unit.TiB(1.5), unit.TiB(400)},
	}
}

// TrainingSpeed is one row of Table 2: ResNet-50 on ImageNet with
// mixed-precision training.
type TrainingSpeed struct {
	GPU      string
	ImagesPS float64
	IO       unit.Bandwidth
}

// Table2TrainingSpeeds returns the Table 2 rows.
func Table2TrainingSpeeds() []TrainingSpeed {
	return []TrainingSpeed{
		{"1*V100", 1003, unit.MBpsOf(114)},
		{"1*A100", 2930, unit.MBpsOf(333)},
		{"8*V100", 7813, unit.MBpsOf(888)},
		{"8*A100", 16925, unit.MBpsOf(1923)},
		{"1*Gaudi2", 5325, unit.MBpsOf(614)},
	}
}

// GPUTrendPoint is one point of Figure 1: single-precision GPU compute
// versus the egress bandwidth limit of cloud storage accounts.
type GPUTrendPoint struct {
	Year       int
	GPU        string  // empty when no new GPU generation that year
	TFLOPS     float64 // single-precision (TF32 for A100/H100)
	EgressGbps float64 // highest supported storage-account egress
}

// Figure1GPUTrend returns the Figure 1 series: a 125x GPU-speed increase
// against a 12x egress-limit increase across 2015-2022.
func Figure1GPUTrend() []GPUTrendPoint {
	return []GPUTrendPoint{
		{Year: 2015, GPU: "K80", TFLOPS: 8.7, EgressGbps: 10},
		{Year: 2016, GPU: "P100", TFLOPS: 10.6, EgressGbps: 15},
		{Year: 2017, GPU: "V100", TFLOPS: 15.7, EgressGbps: 25},
		{Year: 2018, TFLOPS: 15.7, EgressGbps: 30},
		{Year: 2019, TFLOPS: 15.7, EgressGbps: 50},
		{Year: 2020, GPU: "A100", TFLOPS: 156, EgressGbps: 60},
		{Year: 2021, TFLOPS: 156, EgressGbps: 100},
		{Year: 2022, GPU: "H100", TFLOPS: 989, EgressGbps: 120},
	}
}
