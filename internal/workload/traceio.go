package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/unit"
)

// traceRecord is the JSONL on-disk form of a JobSpec. Models are
// referenced by catalog name so traces stay small and stable across
// catalog refinements.
type traceRecord struct {
	ID          string          `json:"id"`
	Model       string          `json:"model"`
	Dataset     string          `json:"dataset"`
	DatasetSize unit.Bytes      `json:"dataset_size"`
	NumGPUs     int             `json:"num_gpus"`
	NumSteps    int64           `json:"num_steps"`
	SubmitSec   float64         `json:"submit_sec"`
	SpeedScale  float64         `json:"speed_scale,omitempty"`
	Curriculum  *CurriculumSpec `json:"curriculum,omitempty"`
}

// WriteTrace writes jobs as JSON lines.
func WriteTrace(w io.Writer, jobs []JobSpec) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, j := range jobs {
		rec := traceRecord{
			ID:          j.ID,
			Model:       j.Model.Name,
			Dataset:     j.Dataset.Name,
			DatasetSize: j.Dataset.Size,
			NumGPUs:     j.NumGPUs,
			NumSteps:    j.NumSteps,
			SubmitSec:   float64(j.Submit),
			SpeedScale:  j.SpeedScale,
			Curriculum:  j.Curriculum,
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("workload: write trace: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]JobSpec, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var jobs []JobSpec
	for {
		var rec traceRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("workload: read trace record %d: %w", len(jobs), err)
		}
		model, err := ModelByName(rec.Model)
		if err != nil {
			return nil, fmt.Errorf("workload: trace record %d: %w", len(jobs), err)
		}
		spec := JobSpec{
			ID:         rec.ID,
			Model:      model,
			Dataset:    Dataset{Name: rec.Dataset, Size: rec.DatasetSize},
			NumGPUs:    rec.NumGPUs,
			NumSteps:   rec.NumSteps,
			Submit:     unit.Time(rec.SubmitSec),
			SpeedScale: rec.SpeedScale,
			Curriculum: rec.Curriculum,
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		jobs = append(jobs, spec)
	}
	return jobs, nil
}
