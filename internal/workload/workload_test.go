package workload

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/unit"
)

func TestCatalogLookups(t *testing.T) {
	m, err := ModelByName("ResNet-50")
	if err != nil {
		t.Fatal(err)
	}
	if m.IdealIOPerGPU.MBpsValue() != 114 {
		t.Errorf("ResNet-50 f* = %v", m.IdealIOPerGPU)
	}
	if _, err := ModelByName("GPT-7"); err == nil {
		t.Error("unknown model accepted")
	}
	d, err := DatasetByName("ImageNet-1k")
	if err != nil {
		t.Fatal(err)
	}
	if d.Size != unit.GiB(143) {
		t.Errorf("ImageNet-1k size = %v", d.Size)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
	if len(Models()) < 8 || len(Datasets()) != 5 {
		t.Error("catalog sizes")
	}
}

// TestFigure6Efficiencies pins the paper's Figure 6 numbers: the cache
// efficiencies of the known model/dataset pairs.
func TestFigure6Efficiencies(t *testing.T) {
	jobs := Figure6Jobs()
	if len(jobs) != 11 {
		t.Fatalf("Figure 6 has %d jobs, want 11", len(jobs))
	}
	want := map[string]float64{
		"ResNet-50/ImageNet-1k":      0.80,
		"EfficientNetB1/ImageNet-1k": 0.48,
		"ResNet-152/ImageNet-1k":     0.30,
		"ResNet-50/OpenImages":       0.17,
		"BERT/WebSearch":             9.3e-5,
	}
	got := make(map[string]float64)
	for _, j := range jobs {
		got[j.Model.Name+"/"+j.Dataset.Name] = j.CacheEfficiency()
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("missing Figure 6 job %s", k)
			continue
		}
		if math.Abs(g-w)/w > 0.1 {
			t.Errorf("%s efficiency %.4g, paper %.4g", k, g, w)
		}
	}
	// Jobs must be sorted descending.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].CacheEfficiency() > jobs[i-1].CacheEfficiency() {
			t.Error("Figure 6 jobs not sorted by efficiency")
		}
	}
}

func TestTable2Consistency(t *testing.T) {
	// Bytes/image implied by each row should be roughly constant
	// (ResNet-50 on ImageNet has one sample size).
	rows := Table2TrainingSpeeds()
	base := float64(rows[0].IO) / rows[0].ImagesPS
	for _, r := range rows[1:] {
		per := float64(r.IO) / r.ImagesPS
		if math.Abs(per-base)/base > 0.05 {
			t.Errorf("%s implies %.0f bytes/image, others %.0f", r.GPU, per, base)
		}
	}
}

func TestFigure1Growth(t *testing.T) {
	pts := Figure1GPUTrend()
	first, last := pts[0], pts[len(pts)-1]
	gpu := last.TFLOPS / first.TFLOPS
	egress := last.EgressGbps / first.EgressGbps
	if gpu < 100 || gpu > 150 {
		t.Errorf("GPU growth %fx, paper says ~125x", gpu)
	}
	if egress < 10 || egress > 15 {
		t.Errorf("egress growth %fx, paper says ~12x", egress)
	}
}

func TestJobSpecDerivedQuantities(t *testing.T) {
	m, _ := ModelByName("ResNet-50")
	d, _ := DatasetByName("ImageNet-1k")
	j := JobSpec{ID: "j", Model: m, Dataset: d, NumGPUs: 2, NumSteps: 1000}
	if j.IdealThroughput().MBpsValue() != 228 {
		t.Errorf("2-GPU ideal = %v", j.IdealThroughput())
	}
	if j.StepBytesTotal() != 2*m.StepBytes() {
		t.Error("StepBytesTotal")
	}
	if j.TotalBytes() != 1000*j.StepBytesTotal() {
		t.Error("TotalBytes")
	}
	// Ideal duration × ideal throughput == total bytes.
	got := float64(j.IdealDuration()) * float64(j.IdealThroughput())
	if math.Abs(got-float64(j.TotalBytes()))/float64(j.TotalBytes()) > 1e-9 {
		t.Error("duration/throughput inconsistent with total bytes")
	}
	if j.StepsPerEpoch() <= 0 {
		t.Error("StepsPerEpoch")
	}
	// Speed scaling doubles throughput and halves duration.
	j2 := j
	j2.SpeedScale = 2
	if j2.IdealThroughput() != 2*j.IdealThroughput() {
		t.Error("speed scale throughput")
	}
	if math.Abs(float64(j2.IdealDuration())-float64(j.IdealDuration())/2) > 1e-9 {
		t.Error("speed scale duration")
	}
}

func TestWithSteps(t *testing.T) {
	m, _ := ModelByName("ResNet-50")
	d, _ := DatasetByName("ImageNet-1k")
	j := JobSpec{ID: "j", Model: m, Dataset: d, NumGPUs: 1}
	j = j.WithSteps(60 * unit.Minute)
	if math.Abs(float64(j.IdealDuration())-3600) > float64(j.StepTime()) {
		t.Errorf("WithSteps duration %v, want ~1h", j.IdealDuration())
	}
}

func TestJobSpecValidate(t *testing.T) {
	m, _ := ModelByName("ResNet-50")
	d, _ := DatasetByName("ImageNet-1k")
	good := JobSpec{ID: "j", Model: m, Dataset: d, NumGPUs: 1, NumSteps: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	bad := []JobSpec{
		{Model: m, Dataset: d, NumGPUs: 1, NumSteps: 1}, // no ID
		{ID: "j", Model: m, Dataset: d, NumSteps: 1},    // no GPUs
		{ID: "j", Model: m, Dataset: d, NumGPUs: 1},     // no steps
		{ID: "j", Model: m, NumGPUs: 1, NumSteps: 1},    // no dataset
		{ID: "j", Dataset: d, NumGPUs: 1, NumSteps: 1},  // no model
		{ID: "j", Model: m, Dataset: d, NumGPUs: 1, NumSteps: 1, // bad curriculum
			Curriculum: &CurriculumSpec{StartingPercent: 0, Alpha: 2, StepSize: 10}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestCurriculumPacing(t *testing.T) {
	c := CurriculumSpec{StartingPercent: 0.04, Alpha: 2, StepSize: 100}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.VisibleFraction(0); got != 0.04 {
		t.Errorf("g(0) = %v", got)
	}
	if got := c.VisibleFraction(199); got != 0.08 {
		t.Errorf("g(199) = %v, want one doubling", got)
	}
	if got := c.VisibleFraction(10000); got != 1 {
		t.Errorf("g(10000) = %v, want capped at 1", got)
	}
	// Monotone non-decreasing.
	prev := 0.0
	for i := int64(0); i < 1000; i += 50 {
		v := c.VisibleFraction(i)
		if v < prev {
			t.Fatalf("pacing decreased at %d", i)
		}
		prev = v
	}
}

func TestTraceGeneration(t *testing.T) {
	cfg := DefaultTraceConfig(42, 200, 4*unit.Hour)
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 200 {
		t.Fatalf("%d jobs", len(jobs))
	}
	// Determinism: same seed, same trace.
	again, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i] != again[i] && jobs[i].ID == again[i].ID &&
			(jobs[i].NumSteps != again[i].NumSteps || jobs[i].Dataset != again[i].Dataset) {
			t.Fatalf("trace not deterministic at job %d", i)
		}
	}
	// Arrivals sorted, specs valid, durations within bounds.
	var prev unit.Time
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.Submit < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = j.Submit
		d := j.IdealDuration()
		if d < cfg.MinDuration/2 || d > cfg.MaxDuration*2 {
			t.Errorf("job %s duration %v outside bounds", j.ID, d)
		}
	}
	// Different seeds differ.
	other, _ := Generate(DefaultTraceConfig(43, 200, 4*unit.Hour))
	same := 0
	for i := range jobs {
		if jobs[i].NumSteps == other[i].NumSteps {
			same++
		}
	}
	if same == len(jobs) {
		t.Error("different seeds produced identical traces")
	}
}

func TestTraceSharing(t *testing.T) {
	cfg := DefaultTraceConfig(42, 300, 4*unit.Hour)
	cfg.ShareFraction = 1.0
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]int)
	for _, j := range jobs {
		names[j.Dataset.Name]++
	}
	if len(names) > cfg.SharedPoolSize {
		t.Errorf("%d distinct datasets with full sharing, want <= %d", len(names), cfg.SharedPoolSize)
	}
	cfg.ShareFraction = 0
	jobs, _ = Generate(cfg)
	names = make(map[string]int)
	for _, j := range jobs {
		names[j.Dataset.Name]++
	}
	if len(names) != len(jobs) {
		t.Errorf("%d distinct datasets without sharing, want %d", len(names), len(jobs))
	}
}

func TestTraceIORoundTrip(t *testing.T) {
	cur := &CurriculumSpec{StartingPercent: 0.04, Alpha: 2, StepSize: 5000}
	cfg := DefaultTraceConfig(42, 50, unit.Hour)
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs[0].Curriculum = cur

	var buf bytes.Buffer
	if err := WriteTrace(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(back), len(jobs))
	}
	for i := range jobs {
		a, b := jobs[i], back[i]
		if a.ID != b.ID || a.Model.Name != b.Model.Name || a.NumSteps != b.NumSteps ||
			a.NumGPUs != b.NumGPUs || a.Dataset != b.Dataset ||
			math.Abs(float64(a.Submit-b.Submit)) > 1e-6 {
			t.Fatalf("job %d mismatch:\n%+v\n%+v", i, a, b)
		}
	}
	if back[0].Curriculum == nil || *back[0].Curriculum != *cur {
		t.Error("curriculum spec lost in round trip")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := DefaultTraceConfig(1, 0, unit.Hour)
	if _, err := Generate(bad); err == nil {
		t.Error("zero jobs accepted")
	}
	bad = DefaultTraceConfig(1, 10, unit.Hour)
	bad.ShareFraction = 1.5
	if _, err := Generate(bad); err == nil {
		t.Error("share > 1 accepted")
	}
	bad = DefaultTraceConfig(1, 10, unit.Hour)
	bad.GPUWeights = []float64{1}
	if _, err := Generate(bad); err == nil {
		t.Error("mismatched GPU mix accepted")
	}
	bad = DefaultTraceConfig(1, 10, unit.Hour)
	bad.ModelWeights = map[string]float64{"NotAModel": 1}
	if _, err := Generate(bad); err == nil {
		t.Error("unknown model accepted")
	}
}

// TestReadTraceRejectsGarbage exercises the parser's failure paths.
func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"id":"x","model":"NotAModel","dataset":"d","dataset_size":1,"num_gpus":1,"num_steps":1,"submit_sec":0}`,
		`{"id":"","model":"ResNet-50","dataset":"d","dataset_size":1,"num_gpus":1,"num_steps":1,"submit_sec":0}`,
		`{"id":"x","model":"ResNet-50","dataset":"d","dataset_size":0,"num_gpus":1,"num_steps":1,"submit_sec":0}`,
		`{this is not json}`,
		`[1,2,3]`,
	}
	for i, c := range cases {
		if _, err := ReadTrace(bytes.NewReader([]byte(c + "\n"))); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
	// Empty input is a valid empty trace.
	jobs, err := ReadTrace(bytes.NewReader(nil))
	if err != nil || len(jobs) != 0 {
		t.Errorf("empty input: %v, %d jobs", err, len(jobs))
	}
}
