package workload

import (
	"fmt"
	"math"

	"repro/internal/tenant"
	"repro/internal/unit"
)

// CurriculumSpec configures the curriculum-learning access pattern of
// §7.4: samples are sorted by difficulty and each batch samples
// uniformly from the prefix admitted by the exponential pacing function
// (Eq. 10).
type CurriculumSpec struct {
	StartingPercent float64 // fraction of the dataset visible at step 0
	Alpha           float64 // growth factor per pacing step
	StepSize        int64   // iterations between pacing expansions
}

// Validate reports whether the spec is usable.
func (c CurriculumSpec) Validate() error {
	if c.StartingPercent <= 0 || c.StartingPercent > 1 {
		return fmt.Errorf("workload: curriculum starting_percent %v outside (0,1]", c.StartingPercent)
	}
	if c.Alpha <= 1 {
		return fmt.Errorf("workload: curriculum alpha %v must exceed 1", c.Alpha)
	}
	if c.StepSize <= 0 {
		return fmt.Errorf("workload: curriculum step size %d must be positive", c.StepSize)
	}
	return nil
}

// VisibleFraction evaluates the pacing function g(i) of Eq. 10 as a
// fraction of the dataset: min(starting_percent * alpha^floor(i/Step), 1).
func (c CurriculumSpec) VisibleFraction(iteration int64) float64 {
	f := c.StartingPercent * math.Pow(c.Alpha, float64(iteration/c.StepSize))
	return math.Min(f, 1)
}

// JobSpec is everything the scheduler and simulator need to know about a
// training job. The dataset may be a private synthetic one (the traces
// assume mostly-distinct datasets, §7) or a shared catalog dataset.
type JobSpec struct {
	ID      string
	Model   Model
	Dataset Dataset
	NumGPUs int
	// Tenant is the owning tenant's ID; empty means the untenanted flat
	// pool. SLO is the tenant's service tier, copied onto the spec so
	// engines and policies need no registry lookup on the hot path.
	Tenant string
	SLO    tenant.SLOClass
	// NumSteps is the total number of mini-batches the job trains. With
	// data parallelism each step consumes Model.StepBytes per GPU.
	NumSteps int64
	Submit   unit.Time
	// SpeedScale multiplies the GPU compute speed (Figure 14b); 1 for a
	// V100-speed GPU.
	SpeedScale float64
	// Curriculum, when non-nil, marks the job as using the §7.4 access
	// pattern (an "irregular" job in §6 terms).
	Curriculum *CurriculumSpec
}

// speed returns the effective GPU speed multiplier.
func (j JobSpec) speed() float64 {
	if j.SpeedScale <= 0 {
		return 1
	}
	return j.SpeedScale
}

// IdealThroughput is f* for this job: the aggregate data-consumption
// rate when compute is the bottleneck, scaling linearly with GPUs and
// with the GPU speed factor.
func (j JobSpec) IdealThroughput() unit.Bandwidth {
	return j.Model.IdealIOPerGPU * unit.Bandwidth(float64(j.NumGPUs)*j.speed())
}

// StepBytesTotal is the data consumed by one step across all workers.
func (j JobSpec) StepBytesTotal() unit.Bytes {
	return j.Model.StepBytes() * unit.Bytes(j.NumGPUs)
}

// StepTime is the compute time of one step at this job's GPU speed.
func (j JobSpec) StepTime() unit.Duration {
	return unit.Duration(float64(j.Model.StepTime()) / j.speed())
}

// TotalBytes is the total data the job reads over its lifetime.
func (j JobSpec) TotalBytes() unit.Bytes {
	return j.StepBytesTotal() * unit.Bytes(j.NumSteps)
}

// IdealDuration is the job's runtime when IO is never the bottleneck.
func (j JobSpec) IdealDuration() unit.Duration {
	return unit.Duration(float64(j.NumSteps)) * j.StepTime()
}

// StepsPerEpoch is the number of steps needed to read the dataset once.
func (j JobSpec) StepsPerEpoch() int64 {
	sb := j.StepBytesTotal()
	if sb <= 0 {
		return 1
	}
	n := int64(math.Ceil(float64(j.Dataset.Size) / float64(sb)))
	if n < 1 {
		n = 1
	}
	return n
}

// Epochs is the (fractional) number of passes over the dataset.
func (j JobSpec) Epochs() float64 {
	return float64(j.NumSteps) / float64(j.StepsPerEpoch())
}

// CacheEfficiency is f*/d (Eq. 5) in MB/s per GB for this job at its
// allocated GPU count.
func (j JobSpec) CacheEfficiency() float64 {
	d := float64(j.Dataset.Size) / float64(unit.GB)
	if d <= 0 {
		return math.Inf(1)
	}
	return j.IdealThroughput().MBpsValue() / d
}

// Validate reports whether the spec is internally consistent.
func (j JobSpec) Validate() error {
	if j.ID == "" {
		return fmt.Errorf("workload: job with empty ID")
	}
	if j.NumGPUs <= 0 {
		return fmt.Errorf("workload: job %s has %d GPUs", j.ID, j.NumGPUs)
	}
	if j.NumSteps <= 0 {
		return fmt.Errorf("workload: job %s has %d steps", j.ID, j.NumSteps)
	}
	if j.Dataset.Size <= 0 {
		return fmt.Errorf("workload: job %s has empty dataset", j.ID)
	}
	if j.Model.IdealIOPerGPU <= 0 {
		return fmt.Errorf("workload: job %s model %q has no ideal IO", j.ID, j.Model.Name)
	}
	if j.Curriculum != nil {
		if err := j.Curriculum.Validate(); err != nil {
			return fmt.Errorf("job %s: %w", j.ID, err)
		}
	}
	return nil
}

// WithSteps returns a copy of the spec with NumSteps set so the job's
// ideal duration equals d.
func (j JobSpec) WithSteps(d unit.Duration) JobSpec {
	st := j.StepTime()
	if st <= 0 {
		j.NumSteps = 1
		return j
	}
	n := int64(math.Round(float64(d) / float64(st)))
	if n < 1 {
		n = 1
	}
	j.NumSteps = n
	return j
}
