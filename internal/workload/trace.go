package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/simrng"
	"repro/internal/unit"
)

// TraceConfig parameterizes the synthetic trace generator. The defaults
// (see DefaultTraceConfig) follow the paper's setup: job durations drawn
// from a heavy-tailed distribution matching the shape of the Microsoft
// production trace [41], a mix of single- and multi-GPU jobs, and (by
// default) a distinct dataset per job to preserve dataset diversity.
type TraceConfig struct {
	Seed    int64
	NumJobs int
	// ArrivalWindow spreads submissions uniformly at Poisson arrivals
	// over this duration.
	ArrivalWindow unit.Duration
	// MedianDuration and DurationSigma shape the log-normal ideal job
	// duration; durations are clamped to [MinDuration, MaxDuration].
	MedianDuration unit.Duration
	DurationSigma  float64
	MinDuration    unit.Duration
	MaxDuration    unit.Duration
	// GPUCounts and GPUWeights give the multi-GPU mix.
	GPUCounts  []int
	GPUWeights []float64
	// ModelWeights gives per-model sampling weights keyed by model name;
	// models absent from the map are not sampled. Nil means the default
	// image-heavy mix over the whole catalog.
	ModelWeights map[string]float64
	// ShareFraction in [0,1] is the fraction of jobs that draw their
	// dataset from a small shared pool instead of getting a private
	// synthetic copy (Figure 15).
	ShareFraction float64
	// SharedPoolSize is the number of distinct shared datasets
	// (Zipf-popular) when ShareFraction > 0.
	SharedPoolSize int
	// SpeedScale multiplies every job's GPU speed (Figure 14b).
	SpeedScale float64
}

// DefaultTraceConfig returns the configuration used by the cluster
// experiments, sized by job count.
func DefaultTraceConfig(seed int64, numJobs int, window unit.Duration) TraceConfig {
	return TraceConfig{
		Seed:           seed,
		NumJobs:        numJobs,
		ArrivalWindow:  window,
		MedianDuration: 40 * unit.Minute,
		DurationSigma:  2.0,
		MinDuration:    2 * unit.Minute,
		MaxDuration:    3 * unit.Day,
		GPUCounts:      []int{1, 2, 4, 8},
		GPUWeights:     []float64{0.70, 0.12, 0.10, 0.08},
		ShareFraction:  0,
		SharedPoolSize: 8,
		SpeedScale:     1,
	}
}

// defaultModelWeights is the image-heavy job mix used when
// TraceConfig.ModelWeights is nil: mostly vision models with an
// occasional VLAD or BERT job, mirroring the production mix the paper
// describes.
var defaultModelWeights = map[string]float64{
	"ResNet-50":      0.28,
	"ResNet-152":     0.12,
	"EfficientNetB1": 0.14,
	"EfficientNetB0": 0.10,
	"AlexNet":        0.08,
	"InceptionV3":    0.12,
	"VLAD":           0.08,
	"BERT":           0.08,
}

// modelDatasetPool gives the candidate dataset sizes per model family.
// Image models train image-scale datasets; VLAD trains video corpora;
// BERT trains web-scale text (Table 4).
func modelDatasetPool(model string) []Dataset {
	switch model {
	case "VLAD":
		return []Dataset{{Name: "Youtube-8M", Size: unit.TiB(1.46)}}
	case "BERT":
		return []Dataset{{Name: "WebSearch", Size: unit.TiB(20.9)}}
	default:
		return []Dataset{
			{Name: "ImageNet-1k", Size: unit.GiB(143)},
			{Name: "OpenImages", Size: unit.GiB(660)},
			{Name: "ImageNet-22k", Size: unit.TiB(1.36)},
		}
	}
}

// Generate produces a reproducible trace from the config. Jobs are
// returned in submission order.
func Generate(cfg TraceConfig) ([]JobSpec, error) {
	if cfg.NumJobs <= 0 {
		return nil, fmt.Errorf("workload: trace with %d jobs", cfg.NumJobs)
	}
	if len(cfg.GPUCounts) == 0 || len(cfg.GPUCounts) != len(cfg.GPUWeights) {
		return nil, fmt.Errorf("workload: GPU mix misconfigured (%d counts, %d weights)",
			len(cfg.GPUCounts), len(cfg.GPUWeights))
	}
	if cfg.ShareFraction < 0 || cfg.ShareFraction > 1 {
		return nil, fmt.Errorf("workload: share fraction %v outside [0,1]", cfg.ShareFraction)
	}
	weights := cfg.ModelWeights
	if weights == nil {
		weights = defaultModelWeights
	}
	names := make([]string, 0, len(weights))
	for name := range weights {
		if _, err := ModelByName(name); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	ws := make([]float64, len(names))
	for i, n := range names {
		ws[i] = weights[n]
	}

	rng := simrng.New(cfg.Seed)
	arrivalRNG := rng.Split("arrival")
	durRNG := rng.Split("duration")
	mixRNG := rng.Split("mix")
	shareRNG := rng.Split("share")

	// Shared dataset pool: concrete catalog datasets, Zipf-popular.
	sharedPool := buildSharedPool(cfg.SharedPoolSize)
	zipf := simrng.NewZipf(shareRNG, len(sharedPool), 1.1)

	mu := math.Log(float64(cfg.MedianDuration))
	jobs := make([]JobSpec, 0, cfg.NumJobs)
	var clock unit.Time
	meanGap := float64(cfg.ArrivalWindow) / float64(cfg.NumJobs)
	for i := 0; i < cfg.NumJobs; i++ {
		if meanGap > 0 {
			clock = clock.Add(unit.Duration(arrivalRNG.Exponential(meanGap)))
		}
		mName := names[mixRNG.WeightedChoice(ws)]
		model := mustModel(mName)
		gpus := cfg.GPUCounts[mixRNG.WeightedChoice(cfg.GPUWeights)]

		var ds Dataset
		if shareRNG.Float64() < cfg.ShareFraction {
			ds = sharedPool[zipf.Next()]
		} else {
			// Private synthetic dataset: sized like a catalog dataset
			// appropriate for the model (with ±20% jitter — private
			// datasets are never byte-identical), but a unique
			// identity, keeping the cluster's dataset diversity (§7
			// "assuming all jobs use different datasets").
			pool := modelDatasetPool(mName)
			base := pool[mixRNG.Intn(len(pool))]
			size := unit.Bytes(float64(base.Size) * mixRNG.Uniform(0.8, 1.2))
			ds = Dataset{Name: fmt.Sprintf("%s-job%04d", base.Name, i), Size: size}
		}

		dur := unit.Duration(durRNG.BoundedLogNormal(mu, cfg.DurationSigma,
			float64(cfg.MinDuration), float64(cfg.MaxDuration)))
		spec := JobSpec{
			ID:         fmt.Sprintf("job-%04d", i),
			Model:      model,
			Dataset:    ds,
			NumGPUs:    gpus,
			Submit:     clock,
			SpeedScale: cfg.SpeedScale,
		}
		spec = spec.WithSteps(dur)
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		jobs = append(jobs, spec)
	}
	return jobs, nil
}

// buildSharedPool returns n shared datasets cycling over the catalog.
func buildSharedPool(n int) []Dataset {
	if n <= 0 {
		n = 1
	}
	cat := Datasets()
	pool := make([]Dataset, n)
	for i := 0; i < n; i++ {
		base := cat[i%len(cat)]
		pool[i] = Dataset{Name: fmt.Sprintf("shared-%s-%d", base.Name, i/len(cat)), Size: base.Size}
	}
	return pool
}

// TotalGPUDemand sums gpu·steps over the trace, a rough load measure.
func TotalGPUDemand(jobs []JobSpec) float64 {
	var s float64
	for _, j := range jobs {
		s += float64(j.NumGPUs) * float64(j.IdealDuration())
	}
	return s
}
