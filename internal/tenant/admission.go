package tenant

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/unit"
)

// OverQuotaError is the typed rejection Admit returns when a submission
// would push its tenant over a quota. The control plane maps it to HTTP
// 429; callers detect it with errors.As.
type OverQuotaError struct {
	Tenant   string
	Resource string // "gpus" or "cache"
	// Requested, InUse and Limit are in the resource's native unit
	// (GPU count or bytes).
	Requested int64
	InUse     int64
	Limit     int64
}

// Error implements error.
func (e *OverQuotaError) Error() string {
	return fmt.Sprintf("tenant %q over %s quota: requested %d with %d in use, limit %d",
		e.Tenant, e.Resource, e.Requested, e.InUse, e.Limit)
}

// usage is one tenant's live resource footprint.
type usage struct {
	gpus     int
	cache    unit.Bytes
	jobs     int
	datasets map[string]dsUse // distinct attached datasets, name -> refcount+size
}

type dsUse struct {
	refs int
	size unit.Bytes
}

// claim remembers what a job was charged so Release can refund it.
type claim struct {
	tenant  string
	gpus    int
	dataset string
}

// tenantMetrics are the per-tenant admission handles, interned eagerly
// at construction so the metric snapshot's shape depends only on the
// registered tenant set, never on which code paths a run happened to
// take.
type tenantMetrics struct {
	admissions  *metrics.Counter // silod_tenant_admissions_total{tenant}
	rejectGPUs  *metrics.Counter // silod_tenant_rejections_total{tenant,resource="gpus"}
	rejectCache *metrics.Counter // silod_tenant_rejections_total{tenant,resource="cache"}
	activeJobs  *metrics.Gauge   // silod_tenant_active_jobs{tenant}
	gpusInUse   *metrics.Gauge   // silod_tenant_gpus_in_use{tenant}
	cacheInUse  *metrics.Gauge   // silod_tenant_cache_in_use_bytes{tenant}
}

func newTenantMetrics(r *metrics.Registry, id string) *tenantMetrics {
	return &tenantMetrics{
		admissions:  r.Counter("silod_tenant_admissions_total", metrics.L("tenant", id)),
		rejectGPUs:  r.Counter("silod_tenant_rejections_total", metrics.L("tenant", id), metrics.L("resource", "gpus")),
		rejectCache: r.Counter("silod_tenant_rejections_total", metrics.L("tenant", id), metrics.L("resource", "cache")),
		activeJobs:  r.Gauge("silod_tenant_active_jobs", metrics.L("tenant", id)),
		gpusInUse:   r.Gauge("silod_tenant_gpus_in_use", metrics.L("tenant", id)),
		cacheInUse:  r.Gauge("silod_tenant_cache_in_use_bytes", metrics.L("tenant", id)),
	}
}

// Admission enforces per-tenant GPU and cache quotas at submission
// time. GPUs are charged by requested gang size for the job's whole
// lifetime (admission control reasons about entitlement, not the
// instantaneous schedule); cache is charged once per distinct dataset a
// tenant has attached, mirroring how the allocator charges shared
// datasets once. Egress quotas are enforced continuously by the policy
// layer, not at admission.
type Admission struct {
	reg *Registry

	mu    sync.Mutex
	use   map[string]*usage // guarded by mu, keyed by tenant ID
	byJob map[string]claim  // guarded by mu, keyed by job ID

	met map[string]*tenantMetrics // immutable after construction
}

// NewAdmission builds an admission controller over the registry's
// current tenant set, interning per-tenant metric handles for every
// registered tenant. mr may be nil (all instrumentation free no-ops).
func NewAdmission(reg *Registry, mr *metrics.Registry) *Admission {
	a := &Admission{
		reg:   reg,
		use:   make(map[string]*usage),
		byJob: make(map[string]claim),
		met:   make(map[string]*tenantMetrics),
	}
	for _, t := range reg.List() {
		a.use[t.ID] = &usage{datasets: make(map[string]dsUse)}
		a.met[t.ID] = newTenantMetrics(mr, t.ID)
	}
	return a
}

// Admit charges one job against its tenant's quotas, rejecting with a
// typed *OverQuotaError when a quota would be exceeded. Unknown tenants
// fail with a plain error (a 400, not a 429: the request is malformed,
// not rate-limited). Admitting the same job ID twice is an error.
func (a *Admission) Admit(tenantID, jobID string, gpus int, dataset string, datasetBytes unit.Bytes) error {
	t, ok := a.reg.Get(tenantID)
	if !ok {
		return fmt.Errorf("tenant: unknown tenant %q", tenantID)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.byJob[jobID]; dup {
		return fmt.Errorf("tenant: job %q already admitted", jobID)
	}
	u := a.use[tenantID]
	m := a.met[tenantID]
	if t.Quota.GPUs > 0 && u.gpus+gpus > t.Quota.GPUs {
		m.rejectGPUs.Inc()
		return &OverQuotaError{
			Tenant: tenantID, Resource: "gpus",
			Requested: int64(gpus), InUse: int64(u.gpus), Limit: int64(t.Quota.GPUs),
		}
	}
	newBytes := unit.Bytes(0)
	if _, have := u.datasets[dataset]; !have {
		newBytes = datasetBytes
	}
	if t.Quota.Cache > 0 && u.cache+newBytes > t.Quota.Cache {
		m.rejectCache.Inc()
		return &OverQuotaError{
			Tenant: tenantID, Resource: "cache",
			Requested: int64(newBytes), InUse: int64(u.cache), Limit: int64(t.Quota.Cache),
		}
	}
	u.gpus += gpus
	u.jobs++
	du := u.datasets[dataset]
	du.refs++
	du.size = datasetBytes
	u.datasets[dataset] = du
	u.cache += newBytes
	a.byJob[jobID] = claim{tenant: tenantID, gpus: gpus, dataset: dataset}
	m.admissions.Inc()
	a.publishLocked(tenantID)
	return nil
}

// Release refunds a finished (or crashed) job's charges. Unknown job
// IDs are ignored so completion paths need not track admission state.
func (a *Admission) Release(jobID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.byJob[jobID]
	if !ok {
		return
	}
	delete(a.byJob, jobID)
	u := a.use[c.tenant]
	u.gpus -= c.gpus
	u.jobs--
	du := u.datasets[c.dataset]
	du.refs--
	if du.refs <= 0 {
		delete(u.datasets, c.dataset)
		u.cache -= du.size
		if u.cache < 0 {
			u.cache = 0
		}
	} else {
		u.datasets[c.dataset] = du
	}
	a.publishLocked(c.tenant)
}

// Usage reports a tenant's current footprint: active jobs, GPUs in use,
// and charged cache bytes.
func (a *Admission) Usage(tenantID string) (jobs, gpus int, cache unit.Bytes) {
	a.mu.Lock()
	defer a.mu.Unlock()
	u, ok := a.use[tenantID]
	if !ok {
		return 0, 0, 0
	}
	return u.jobs, u.gpus, u.cache
}

// publishLocked refreshes the tenant's usage gauges. Callers hold a.mu.
func (a *Admission) publishLocked(tenantID string) {
	u := a.use[tenantID]
	m := a.met[tenantID]
	m.activeJobs.Set(float64(u.jobs))
	m.gpusInUse.Set(float64(u.gpus))
	m.cacheInUse.Set(float64(u.cache))
}
