package tenant

import (
	"errors"
	"testing"

	"repro/internal/metrics"
	"repro/internal/unit"
)

func TestSLOClassRoundTrip(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseSLO(c.String())
		if err != nil {
			t.Fatalf("ParseSLO(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("ParseSLO(%q) = %v, want %v", c.String(), got, c)
		}
	}
	if got, err := ParseSLO(""); err != nil || got != Standard {
		t.Errorf("ParseSLO(\"\") = %v, %v; want Standard, nil", got, err)
	}
	if _, err := ParseSLO("platinum"); err == nil {
		t.Error("ParseSLO accepted an unknown class")
	}
}

func TestSLOClassOrdering(t *testing.T) {
	if !(Critical.Rank() < Standard.Rank() && Standard.Rank() < Sheddable.Rank()) {
		t.Errorf("rank order broken: critical %d, standard %d, sheddable %d",
			Critical.Rank(), Standard.Rank(), Sheddable.Rank())
	}
	if !(Critical.Weight() > Standard.Weight() && Standard.Weight() > Sheddable.Weight()) {
		t.Errorf("weight order broken: critical %v, standard %v, sheddable %v",
			Critical.Weight(), Standard.Weight(), Sheddable.Weight())
	}
	if Standard.Weight() != 1 {
		t.Errorf("standard weight = %v, want exactly 1 (float-identical defaults)", Standard.Weight())
	}
	var zero SLOClass
	if zero != Standard {
		t.Error("zero SLOClass is not Standard: untenanted jobs would not be neutral")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Tenant{ID: "zeta", Class: Sheddable}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Tenant{ID: "acme", Class: Critical, Quota: Quota{GPUs: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Tenant{ID: "acme"}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := r.Register(Tenant{}); err == nil {
		t.Error("empty ID accepted")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	list := r.List()
	if len(list) != 2 || list[0].ID != "acme" || list[1].ID != "zeta" {
		t.Errorf("List not sorted by ID: %+v", list)
	}
	if tn, ok := r.Get("acme"); !ok || tn.Quota.GPUs != 4 {
		t.Errorf("Get(acme) = %+v, %v", tn, ok)
	}
	if c := r.ClassOf("zeta"); c != Sheddable {
		t.Errorf("ClassOf(zeta) = %v", c)
	}
	if c := r.ClassOf("nobody"); c != Standard {
		t.Errorf("ClassOf(unknown) = %v, want Standard", c)
	}
}

func admissionFixture(t *testing.T) (*Admission, *metrics.Registry) {
	t.Helper()
	r := NewRegistry()
	if err := r.Register(Tenant{ID: "capped", Class: Sheddable,
		Quota: Quota{GPUs: 4, Cache: unit.GiB(100)}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Tenant{ID: "open", Class: Critical}); err != nil {
		t.Fatal(err)
	}
	mr := metrics.NewRegistry("test")
	return NewAdmission(r, mr), mr
}

func TestAdmissionGPUQuota(t *testing.T) {
	a, mr := admissionFixture(t)
	if err := a.Admit("capped", "j1", 3, "ds", unit.GiB(10)); err != nil {
		t.Fatal(err)
	}
	err := a.Admit("capped", "j2", 2, "ds", unit.GiB(10))
	var oq *OverQuotaError
	if !errors.As(err, &oq) {
		t.Fatalf("over-quota admit returned %v, want *OverQuotaError", err)
	}
	if oq.Resource != "gpus" || oq.Requested != 2 || oq.InUse != 3 || oq.Limit != 4 {
		t.Errorf("error fields = %+v", oq)
	}
	snap := mr.Snapshot()
	if v := snap.CounterValue("silod_tenant_rejections_total",
		map[string]string{"tenant": "capped", "resource": "gpus"}); v != 1 {
		t.Errorf("gpu rejection counter = %v, want 1", v)
	}
	// Releasing the first job frees the quota for the second.
	a.Release("j1")
	if err := a.Admit("capped", "j2", 2, "ds", unit.GiB(10)); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestAdmissionSharedDatasetCharging(t *testing.T) {
	a, _ := admissionFixture(t)
	// Two jobs on the same 80 GiB dataset: cache is charged once, so the
	// second admit fits inside the 100 GiB quota.
	if err := a.Admit("capped", "j1", 1, "shared", unit.GiB(80)); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit("capped", "j2", 1, "shared", unit.GiB(80)); err != nil {
		t.Fatalf("shared dataset double-charged: %v", err)
	}
	if _, _, cache := a.Usage("capped"); cache != unit.GiB(80) {
		t.Errorf("cache usage = %v, want 80 GiB (charged once)", cache)
	}
	// A third job on a distinct dataset that would exceed the quota is
	// rejected on the cache resource.
	err := a.Admit("capped", "j3", 1, "private", unit.GiB(30))
	var oq *OverQuotaError
	if !errors.As(err, &oq) || oq.Resource != "cache" {
		t.Fatalf("distinct-dataset overflow returned %v", err)
	}
	// Releasing one sharer keeps the charge; releasing both refunds it.
	a.Release("j1")
	if _, _, cache := a.Usage("capped"); cache != unit.GiB(80) {
		t.Errorf("cache after one release = %v, want 80 GiB", cache)
	}
	a.Release("j2")
	if jobs, gpus, cache := a.Usage("capped"); jobs != 0 || gpus != 0 || cache != 0 {
		t.Errorf("usage after full release = %d jobs, %d gpus, %v cache", jobs, gpus, cache)
	}
}

func TestAdmissionErrors(t *testing.T) {
	a, mr := admissionFixture(t)
	if err := a.Admit("ghost", "j1", 1, "ds", 0); err == nil {
		t.Error("unknown tenant admitted")
	} else {
		var oq *OverQuotaError
		if errors.As(err, &oq) {
			t.Error("unknown tenant produced an OverQuotaError (should be a plain 400-style error)")
		}
	}
	if err := a.Admit("open", "j1", 1, "ds", 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit("open", "j1", 1, "ds", 0); err == nil {
		t.Error("duplicate job ID admitted")
	}
	a.Release("never-admitted") // must be a no-op, not a panic
	snap := mr.Snapshot()
	if v := snap.CounterValue("silod_tenant_admissions_total",
		map[string]string{"tenant": "open"}); v != 1 {
		t.Errorf("admissions counter = %v, want 1", v)
	}
	if ms, ok := snap.Get("silod_tenant_active_jobs", map[string]string{"tenant": "open"}); !ok || ms.Value == nil || *ms.Value != 1 {
		t.Errorf("active jobs gauge = %+v, %v; want 1", ms, ok)
	}
}

// TestAdmissionNilMetrics: instrumentation must be optional.
func TestAdmissionNilMetrics(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Tenant{ID: "a", Class: Standard, Quota: Quota{GPUs: 1}}); err != nil {
		t.Fatal(err)
	}
	a := NewAdmission(r, nil)
	if err := a.Admit("a", "j", 1, "ds", 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit("a", "k", 1, "ds", 0); err == nil {
		t.Error("quota not enforced with nil metrics registry")
	}
	a.Release("j")
}
