// Package tenant makes resource ownership first-class: tenants carry an
// SLO class (critical / standard / sheddable) and per-tenant quotas for
// the three SiloD resources (GPUs, cache capacity, remote egress). A
// deterministic Registry holds the tenant set and an Admission
// controller enforces GPU/cache quotas at job-submission time with a
// typed, 429-style rejection. Policies weight the cache-allocation
// greedy (Algorithm 2) and the remote-IO split by SLO class, and fault
// preemption drains tenants in reverse-SLO order (sheddable first) so
// critical tenants stay inside the fault-free envelope.
package tenant

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/unit"
)

// SLOClass is a tenant's service tier. The zero value is Standard so an
// untenanted job (empty tenant ID, zero class) behaves exactly like the
// flat pool did before multi-tenancy existed.
// silod:enum
type SLOClass int

// The service tiers, best-protected first at preemption time.
const (
	Standard SLOClass = iota
	Critical
	Sheddable
)

// String implements fmt.Stringer.
func (c SLOClass) String() string {
	switch c {
	case Critical:
		return "critical"
	case Sheddable:
		return "sheddable"
	default:
		return "standard"
	}
}

// ParseSLO inverts String.
func ParseSLO(s string) (SLOClass, error) {
	switch s {
	case "critical":
		return Critical, nil
	case "standard", "":
		return Standard, nil
	case "sheddable":
		return Sheddable, nil
	}
	return Standard, fmt.Errorf("tenant: unknown SLO class %q (want critical, standard or sheddable)", s)
}

// Rank orders classes for admission and preemption: lower ranks are
// admitted first and preempted last, so on capacity loss the re-solve
// drops sheddable jobs before standard before critical.
//
// silod:pure
func (c SLOClass) Rank() int {
	switch c {
	case Critical:
		return 0
	case Sheddable:
		return 2
	default:
		return 1
	}
}

// Weight is the multiplier applied to a job's cache efficiency and its
// remote-IO fair share. Standard weighs 1 so a single-class cluster is
// numerically identical to the unweighted allocators.
//
// silod:pure
func (c SLOClass) Weight() float64 {
	switch c {
	case Critical:
		return 2
	case Sheddable:
		return 0.5
	default:
		return 1
	}
}

// Classes lists every SLO class, best-protected first — the order
// consumers intern per-class metric series in.
func Classes() []SLOClass {
	return []SLOClass{Critical, Standard, Sheddable}
}

// Quota bounds one tenant's slice of the cluster. A zero or negative
// value leaves that dimension unlimited, so Quota{} is "no quotas".
type Quota struct {
	GPUs   int            // concurrent gang GPUs across the tenant's active jobs
	Cache  unit.Bytes     // total footprint of the tenant's distinct datasets
	Egress unit.Bandwidth // aggregate remote-IO bandwidth across running jobs
}

// Tenant is one registered resource owner.
type Tenant struct {
	ID    string
	Class SLOClass
	Quota Quota
}

// Registry is the deterministic tenant catalog. Registration happens
// before a run or server starts serving; lookups are concurrency-safe
// and List is sorted so every consumer iterates tenants in the same
// order regardless of registration order.
type Registry struct {
	mu      sync.Mutex
	tenants map[string]Tenant // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]Tenant)}
}

// Register adds a tenant. Duplicate or empty IDs fail: the ID is the
// metric label and admission key, so it must be unique and non-empty.
func (r *Registry) Register(t Tenant) error {
	if t.ID == "" {
		return fmt.Errorf("tenant: register with empty ID")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[t.ID]; ok {
		return fmt.Errorf("tenant: %q already registered", t.ID)
	}
	r.tenants[t.ID] = t
	return nil
}

// Get looks up a tenant by ID.
func (r *Registry) Get(id string) (Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	return t, ok
}

// ClassOf returns the SLO class for id, Standard when the tenant is
// unknown — the flat-pool default.
func (r *Registry) ClassOf(id string) SLOClass {
	t, ok := r.Get(id)
	if !ok {
		return Standard
	}
	return t.Class
}

// List returns all tenants sorted by ID. Registration is wiring-time
// only, so during a scheduling run List is a pure read (the mutex is
// safety plumbing, not hidden state).
//
// silod:pure
func (r *Registry) List() []Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of registered tenants.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tenants)
}
