package dataset

import (
	"testing"
	"testing/quick"

	"repro/internal/simrng"
	"repro/internal/unit"
	"repro/internal/workload"
)

func TestNewBlocks(t *testing.T) {
	b, err := New("ds", unit.GiB(1), 64*unit.MB)
	if err != nil {
		t.Fatal(err)
	}
	if b.Num != 16 {
		t.Errorf("1GiB/64MB = %d blocks, want 16", b.Num)
	}
	// Partial final block rounds up.
	b, _ = New("ds", unit.GiB(1)+1, 64*unit.MB)
	if b.Num != 17 {
		t.Errorf("rounding: %d blocks, want 17", b.Num)
	}
	if _, err := New("ds", 0, 64*unit.MB); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New("ds", unit.GiB(1), 0); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestFromWorkload(t *testing.T) {
	d, _ := workload.DatasetByName("ImageNet-1k")
	b, err := FromWorkload(d)
	if err != nil {
		t.Fatal(err)
	}
	if b.Num != 2288 {
		t.Errorf("ImageNet-1k = %d blocks at 64MB, want 2288", b.Num)
	}
}

// TestEpochStreamExactlyOnce verifies the defining property of the DL
// access pattern (§2.2): every epoch visits every block exactly once.
func TestEpochStreamExactlyOnce(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%64 + 1
		b := Blocks{Name: "x", Size: unit.Bytes(n), BlockSize: 1, Num: n}
		s := NewEpochStream(b, simrng.New(seed))
		for epoch := 0; epoch < 3; epoch++ {
			seen := make(map[int]bool, n)
			for i := 0; i < n; i++ {
				blk, newEpoch := s.Next()
				if (i == 0) != newEpoch {
					return false // newEpoch must fire exactly at epoch starts
				}
				if seen[blk] {
					return false // duplicate within an epoch
				}
				seen[blk] = true
			}
			if len(seen) != n {
				return false
			}
			if s.Epoch() != epoch {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEpochStreamShuffles(t *testing.T) {
	b := Blocks{Name: "x", Size: 64, BlockSize: 1, Num: 64}
	s := NewEpochStream(b, simrng.New(1))
	first := make([]int, 64)
	for i := range first {
		first[i], _ = s.Next()
	}
	second := make([]int, 64)
	for i := range second {
		second[i], _ = s.Next()
	}
	same := true
	for i := range first {
		if first[i] != second[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("consecutive epochs used the same order")
	}
}

func TestCurriculumStreamRespectsPacing(t *testing.T) {
	b := Blocks{Name: "x", Size: 1000, BlockSize: 1, Num: 1000}
	spec := workload.CurriculumSpec{StartingPercent: 0.1, Alpha: 2, StepSize: 100}
	s, err := NewCurriculumStream(b, spec, simrng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		vis := s.VisibleBlocks(i)
		blk, _ := s.Next()
		if blk >= vis {
			t.Fatalf("iteration %d drew block %d beyond visible prefix %d", i, blk, vis)
		}
	}
	if s.Iteration() != 500 {
		t.Errorf("iteration count %d", s.Iteration())
	}
	// Repeats must occur (unlike epoch streams): 100 visible blocks,
	// 100+ draws in the first window.
	s2, _ := NewCurriculumStream(b, spec, simrng.New(3))
	seen := make(map[int]int)
	for i := 0; i < 100; i++ {
		blk, _ := s2.Next()
		seen[blk]++
	}
	repeats := 0
	for _, c := range seen {
		if c > 1 {
			repeats++
		}
	}
	if repeats == 0 {
		t.Error("no repeats in 100 draws from a 100-block window (astronomically unlikely)")
	}
}

func TestCurriculumNewEpochOnPacingGrowth(t *testing.T) {
	b := Blocks{Name: "x", Size: 100, BlockSize: 1, Num: 100}
	spec := workload.CurriculumSpec{StartingPercent: 0.1, Alpha: 2, StepSize: 10}
	s, _ := NewCurriculumStream(b, spec, simrng.New(4))
	growths := 0
	for i := 0; i < 60; i++ {
		_, grew := s.Next()
		if grew {
			growths++
		}
	}
	// Window doubles at iterations 10, 20, 30, 40 (then caps) plus the
	// initial window at iteration 0.
	if growths < 4 {
		t.Errorf("only %d pacing growth events in 60 iterations", growths)
	}
	if s.Epoch() < 4 {
		t.Errorf("pacing-step index %d", s.Epoch())
	}
}

func TestCurriculumRejectsBadSpec(t *testing.T) {
	b := Blocks{Name: "x", Size: 10, BlockSize: 1, Num: 10}
	if _, err := NewCurriculumStream(b, workload.CurriculumSpec{StartingPercent: 2, Alpha: 2, StepSize: 1}, simrng.New(1)); err == nil {
		t.Error("bad spec accepted")
	}
}
