// Package dataset models training datasets at block granularity and
// produces the access streams that drive the batch-level simulator and
// the testbed: the regular epoch-shuffled exactly-once stream (§2.2)
// and the curriculum-learning stream paced by Eq. 10 (§7.4).
package dataset

import (
	"fmt"
	"math"

	"repro/internal/simrng"
	"repro/internal/unit"
	"repro/internal/workload"
)

// Blocks is the block-granularity view of a dataset.
type Blocks struct {
	Name      string
	Size      unit.Bytes
	BlockSize unit.Bytes
	Num       int
}

// New splits a dataset of the given size into blocks. The final partial
// block is rounded up to a whole block, so Num*BlockSize >= Size.
func New(name string, size, blockSize unit.Bytes) (Blocks, error) {
	if size <= 0 {
		return Blocks{}, fmt.Errorf("dataset: non-positive size %v for %q", size, name)
	}
	if blockSize <= 0 {
		return Blocks{}, fmt.Errorf("dataset: non-positive block size %v for %q", blockSize, name)
	}
	n := int(math.Ceil(float64(size) / float64(blockSize)))
	if n < 1 {
		n = 1
	}
	return Blocks{Name: name, Size: size, BlockSize: blockSize, Num: n}, nil
}

// FromWorkload builds the block view of a workload dataset at the
// default block size.
func FromWorkload(d workload.Dataset) (Blocks, error) {
	return New(d.Name, d.Size, 64*unit.MB)
}

// Stream yields the sequence of block accesses a training job performs.
type Stream interface {
	// Next returns the next block to read and whether a new epoch (or
	// pacing-window change, for curriculum) began at this access.
	Next() (block int, newEpoch bool)
	// Epoch reports the zero-based index of the current epoch.
	Epoch() int
}

// EpochStream is the regular DL access pattern: every epoch visits every
// block exactly once in a fresh random order.
type EpochStream struct {
	blocks Blocks
	rng    *simrng.RNG
	perm   []int
	pos    int
	epoch  int
}

// NewEpochStream returns a stream over b seeded by rng.
func NewEpochStream(b Blocks, rng *simrng.RNG) *EpochStream {
	s := &EpochStream{blocks: b, rng: rng, epoch: -1}
	s.reshuffle()
	return s
}

func (s *EpochStream) reshuffle() {
	s.perm = s.rng.Perm(s.blocks.Num)
	s.pos = 0
	s.epoch++
}

// Next implements Stream.
func (s *EpochStream) Next() (int, bool) {
	newEpoch := false
	if s.pos >= len(s.perm) {
		s.reshuffle()
		newEpoch = true
	}
	if s.epoch == 0 && s.pos == 0 {
		newEpoch = true
	}
	b := s.perm[s.pos]
	s.pos++
	return b, newEpoch
}

// Epoch implements Stream.
func (s *EpochStream) Epoch() int { return s.epoch }

// RestartEpoch rewinds the stream to the start of the current epoch
// with a fresh shuffle — the crash-recovery path: a restarted job
// replays its current epoch from scratch (epoch-granular rollback),
// and a real loader would draw a new permutation. The epoch counter
// does not advance.
func (s *EpochStream) RestartEpoch() {
	s.perm = s.rng.Perm(s.blocks.Num)
	s.pos = 0
}

// StepsPerEpoch reports the accesses per epoch.
func (s *EpochStream) StepsPerEpoch() int { return s.blocks.Num }

// CurriculumStream implements the §7.4 access pattern: blocks are
// pre-sorted by training difficulty (block ID order), and each access
// samples uniformly from the prefix admitted by the pacing function.
// There is no epoch concept; newEpoch fires when the pacing window
// grows, since that is when cache-effectiveness conditions change.
type CurriculumStream struct {
	blocks    Blocks
	spec      workload.CurriculumSpec
	rng       *simrng.RNG
	iteration int64
	lastVis   int
}

// NewCurriculumStream returns a curriculum stream over b.
func NewCurriculumStream(b Blocks, spec workload.CurriculumSpec, rng *simrng.RNG) (*CurriculumStream, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &CurriculumStream{blocks: b, spec: spec, rng: rng, lastVis: -1}, nil
}

// VisibleBlocks reports how many blocks the pacing function admits at
// the given iteration.
func (s *CurriculumStream) VisibleBlocks(iteration int64) int {
	n := int(math.Ceil(s.spec.VisibleFraction(iteration) * float64(s.blocks.Num)))
	if n < 1 {
		n = 1
	}
	if n > s.blocks.Num {
		n = s.blocks.Num
	}
	return n
}

// Next implements Stream.
func (s *CurriculumStream) Next() (int, bool) {
	vis := s.VisibleBlocks(s.iteration)
	grew := vis != s.lastVis
	s.lastVis = vis
	s.iteration++
	return s.rng.Intn(vis), grew
}

// Epoch implements Stream. Curriculum training has no epochs; we report
// the pacing-step index, the closest analogue.
func (s *CurriculumStream) Epoch() int {
	if s.iteration == 0 {
		return 0
	}
	return int((s.iteration - 1) / s.spec.StepSize)
}

// Iteration reports the number of accesses made so far.
func (s *CurriculumStream) Iteration() int64 { return s.iteration }
