package cache

import "repro/internal/metrics"

// PoolMetrics is the cache instrumentation surface: pre-interned
// handles a pool updates on its access and eviction paths. The zero
// value (all-nil handles) no-ops, so pools are instrumented
// unconditionally and pay a few nil-checked atomic calls only when a
// registry is attached via SetMetrics.
type PoolMetrics struct {
	Hits       *metrics.Counter // silod_cache_hits_total
	Misses     *metrics.Counter // silod_cache_misses_total (admitted or not)
	Admissions *metrics.Counter // silod_cache_admissions_total
	Evictions  *metrics.Counter // silod_cache_evictions_total
	Resident   *metrics.Gauge   // silod_cache_resident_bytes
}

// NewPoolMetrics interns the standard cache metric family under the
// given policy label ("lru" for the Alluxio baseline, "uniform" for
// quota pools; the simulator labels by cache system: SiloD, CoorDL,
// Quiver...).
func NewPoolMetrics(r *metrics.Registry, policy string) PoolMetrics {
	l := metrics.L("policy", policy)
	return PoolMetrics{
		Hits:       r.Counter("silod_cache_hits_total", l),
		Misses:     r.Counter("silod_cache_misses_total", l),
		Admissions: r.Counter("silod_cache_admissions_total", l),
		Evictions:  r.Counter("silod_cache_evictions_total", l),
		Resident:   r.Gauge("silod_cache_resident_bytes", l),
	}
}

// SetMetrics attaches instrumentation to the pool. Pass the zero value
// to detach.
func (p *LRUPool) SetMetrics(m PoolMetrics) { p.met = m }

// SetMetrics attaches instrumentation to the pool. Pass the zero value
// to detach.
func (p *QuotaPool) SetMetrics(m PoolMetrics) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.met = m
}
