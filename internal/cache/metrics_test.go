package cache

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/simrng"
	"repro/internal/unit"
)

// counts reads the five standard cache metrics back from a registry.
func counts(t *testing.T, r *metrics.Registry, policy string) (hits, misses, admits, evicts, resident float64) {
	t.Helper()
	snap := r.Snapshot()
	l := map[string]string{"policy": policy}
	return snap.CounterValue("silod_cache_hits_total", l),
		snap.CounterValue("silod_cache_misses_total", l),
		snap.CounterValue("silod_cache_admissions_total", l),
		snap.CounterValue("silod_cache_evictions_total", l),
		snap.CounterValue("silod_cache_resident_bytes", l)
}

// TestLRUPoolScriptedCounts drives the Alluxio-baseline pool through a
// fixed access script and asserts the exact counter values.
func TestLRUPoolScriptedCounts(t *testing.T) {
	reg := metrics.NewRegistry("test")
	p := NewLRUPool(2 * unit.MB) // room for exactly 2 blocks
	p.SetMetrics(NewPoolMetrics(reg, "lru"))
	if err := p.Register("ds", 4, unit.MB); err != nil {
		t.Fatal(err)
	}
	access := func(blk BlockID) Outcome {
		out, err := p.Access("ds", blk)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	access(0) // miss, admit
	access(0) // hit
	access(1) // miss, admit (pool full)
	access(2) // miss, admit, evicts LRU block 0
	access(0) // miss again (was evicted), evicts block 1
	access(2) // hit

	hits, misses, admits, evicts, resident := counts(t, reg, "lru")
	if hits != 2 || misses != 4 || admits != 4 || evicts != 2 {
		t.Errorf("got hits=%v misses=%v admits=%v evicts=%v, want 2/4/4/2",
			hits, misses, admits, evicts)
	}
	if want := float64(2 * unit.MB); resident != want {
		t.Errorf("resident = %v, want %v", resident, want)
	}

	// DropKey evicts everything that remains.
	p.DropKey("ds")
	_, _, _, evicts, resident = counts(t, reg, "lru")
	if evicts != 4 {
		t.Errorf("evictions after DropKey = %v, want 4", evicts)
	}
	if resident != 0 {
		t.Errorf("resident after DropKey = %v, want 0", resident)
	}
}

// TestQuotaPoolScriptedCounts covers the uniform-quota pool (the SiloD,
// CoorDL and Quiver cache mechanism): quota-bounded admission, rejected
// misses, and random eviction on quota shrink.
func TestQuotaPoolScriptedCounts(t *testing.T) {
	reg := metrics.NewRegistry("test")
	p := NewQuotaPool(10*unit.MB, simrng.New(7))
	p.SetMetrics(NewPoolMetrics(reg, "uniform"))
	if err := p.Register("ds", 8, unit.MB); err != nil {
		t.Fatal(err)
	}
	if err := p.SetQuota("ds", 2*unit.MB); err != nil {
		t.Fatal(err)
	}
	access := func(blk BlockID) {
		if _, err := p.Access("ds", blk); err != nil {
			t.Fatal(err)
		}
	}
	access(0) // miss, admit
	access(1) // miss, admit (quota now full)
	access(2) // miss, rejected: over quota
	access(0) // hit
	access(1) // hit

	hits, misses, admits, evicts, resident := counts(t, reg, "uniform")
	if hits != 2 || misses != 3 || admits != 2 || evicts != 0 {
		t.Errorf("got hits=%v misses=%v admits=%v evicts=%v, want 2/3/2/0",
			hits, misses, admits, evicts)
	}
	if want := float64(2 * unit.MB); resident != want {
		t.Errorf("resident = %v, want %v", resident, want)
	}

	// Shrinking the quota evicts one uniformly random block.
	if err := p.SetQuota("ds", unit.MB); err != nil {
		t.Fatal(err)
	}
	_, _, _, evicts, resident = counts(t, reg, "uniform")
	if evicts != 1 {
		t.Errorf("evictions after shrink = %v, want 1", evicts)
	}
	if want := float64(unit.MB); resident != want {
		t.Errorf("resident after shrink = %v, want %v", resident, want)
	}

	// DropKey accounts the remaining block as evicted.
	p.DropKey("ds")
	_, _, _, evicts, resident = counts(t, reg, "uniform")
	if evicts != 2 || resident != 0 {
		t.Errorf("after DropKey: evicts=%v resident=%v, want 2/0", evicts, resident)
	}
}

// TestCoorDLPrivateKeysShareOneFamily checks that per-job (CoorDL-style)
// cache keys aggregate into the same labeled series: the label is the
// policy, not the job.
func TestCoorDLPrivateKeysShareOneFamily(t *testing.T) {
	reg := metrics.NewRegistry("test")
	p := NewQuotaPool(10*unit.MB, simrng.New(1))
	p.SetMetrics(NewPoolMetrics(reg, "coordl"))
	for _, key := range []string{"job/a", "job/b"} {
		if err := p.Register(key, 2, unit.MB); err != nil {
			t.Fatal(err)
		}
		if err := p.SetQuota(key, 2*unit.MB); err != nil {
			t.Fatal(err)
		}
	}
	for _, key := range []string{"job/a", "job/b"} {
		if _, err := p.Access(key, 0); err != nil { // miss each
			t.Fatal(err)
		}
		if _, err := p.Access(key, 0); err != nil { // hit each
			t.Fatal(err)
		}
	}
	hits, misses, _, _, _ := counts(t, reg, "coordl")
	if hits != 2 || misses != 2 {
		t.Errorf("got hits=%v misses=%v, want 2/2", hits, misses)
	}
}

// TestUninstrumentedPoolsStillWork guards the nil-handle path: pools
// without SetMetrics must behave identically.
func TestUninstrumentedPoolsStillWork(t *testing.T) {
	p := NewLRUPool(unit.MB)
	if err := p.Register("ds", 2, unit.MB); err != nil {
		t.Fatal(err)
	}
	if out, err := p.Access("ds", 0); err != nil || out.Hit {
		t.Fatalf("access = %+v, %v", out, err)
	}
	if out, err := p.Access("ds", 0); err != nil || !out.Hit {
		t.Fatalf("second access = %+v, %v", out, err)
	}
}
