package cache

import (
	"testing"

	"repro/internal/simrng"
	"repro/internal/unit"
)

func BenchmarkQuotaPoolAccess(b *testing.B) {
	p := NewQuotaPool(unit.TiB(2), simrng.New(1))
	const blocks = 32768
	p.Register("ds", blocks, 64*unit.MB)
	p.SetQuota("ds", unit.TiB(1))
	rng := simrng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Access("ds", BlockID(rng.Intn(blocks))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLRUPoolAccess(b *testing.B) {
	p := NewLRUPool(unit.TiB(1))
	const blocks = 32768
	p.Register("ds", blocks, 64*unit.MB)
	rng := simrng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Access("ds", BlockID(rng.Intn(blocks))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheLRU(b *testing.B) {
	streams := make([]FluidStream, 200)
	rng := simrng.New(3)
	for i := range streams {
		streams[i] = FluidStream{
			Size: unit.Bytes(rng.Uniform(50, 1500)) * unit.GB,
			Rate: unit.Bandwidth(rng.Uniform(2, 300)) * unit.MBps,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CheLRU(unit.TiB(24), streams)
	}
}

func BenchmarkBitsetSetTest(b *testing.B) {
	bs := NewBitset(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.Set(i & (1<<20 - 1))
		bs.Test((i * 7) & (1<<20 - 1))
	}
}
