package cache

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/simrng"
	"repro/internal/unit"
)

// DefaultBlockSize is the block granularity datasets are cached at.
const DefaultBlockSize = 64 * unit.MB

// BlockID indexes a block within a dataset.
type BlockID int32

// Outcome describes what happened on a block access.
type Outcome struct {
	Hit      bool // the block was already cached
	Admitted bool // the block was inserted on this (miss) access
}

// Pool is a block cache shared by the cluster. Keys scope the
// accounting: the SiloD data manager keys by dataset (so jobs sharing a
// dataset share its cache, §6), while the CoorDL baseline keys by job
// (isolated per-VM caches).
type Pool interface {
	// Register declares a key with its block geometry. Registering an
	// existing key is a no-op if the geometry matches and an error
	// otherwise.
	Register(key string, numBlocks int, blockSize unit.Bytes) error
	// Access records a read of block blk under key and applies the
	// policy's admission/eviction decision.
	Access(key string, blk BlockID) (Outcome, error)
	// Contains reports whether the block is cached, without touching
	// recency state.
	Contains(key string, blk BlockID) bool
	// CachedBlocks reports the number of cached blocks under key.
	CachedBlocks(key string) int
	// CachedBytes reports the cached bytes under key.
	CachedBytes(key string) unit.Bytes
	// TotalCachedBytes reports the pool-wide cached bytes.
	TotalCachedBytes() unit.Bytes
	// Capacity reports the pool capacity in bytes.
	Capacity() unit.Bytes
	// Resize changes the pool capacity (a cache-node loss or return),
	// evicting per the pool's policy until the contents fit.
	Resize(capacity unit.Bytes)
	// EvictFraction invalidates the given fraction of cached blocks —
	// the contents that lived on a failed cache node.
	EvictFraction(frac float64)
}

// keyState is the per-key bookkeeping shared by pool implementations.
type keyState struct {
	name      string
	numBlocks int
	blockSize unit.Bytes
	cached    *Bitset
}

// QuotaPool implements uniform caching with per-key quotas — the cache
// mechanism SiloD's data manager enforces (§6): a fetched block is
// admitted iff the key's cached bytes are below its quota; nothing is
// ever evicted except when a quota is reduced, in which case
// ShrinkQuota evicts uniformly at random (preserving the uniform access
// pattern). All methods are safe for concurrent use: the simulator
// drives the pool single-threaded, but the testbed's loader goroutines
// hit it concurrently through the data manager.
type QuotaPool struct {
	mu       sync.Mutex
	capacity unit.Bytes            // guarded by mu (shrinks/grows on cache-node faults)
	keys     map[string]*keyState  // guarded by mu
	quotas   map[string]unit.Bytes // guarded by mu
	total    unit.Bytes            // guarded by mu
	rng      *simrng.RNG           // guarded by mu
	met      PoolMetrics           // guarded by mu
}

// NewQuotaPool returns an empty pool with the given capacity. The RNG
// drives random eviction on quota shrink; pass a seeded source for
// reproducible runs.
func NewQuotaPool(capacity unit.Bytes, rng *simrng.RNG) *QuotaPool {
	if rng == nil {
		rng = simrng.New(1)
	}
	return &QuotaPool{
		capacity: capacity,
		keys:     make(map[string]*keyState),
		quotas:   make(map[string]unit.Bytes),
		rng:      rng,
	}
}

// Register implements Pool.
func (p *QuotaPool) Register(key string, numBlocks int, blockSize unit.Bytes) error {
	if numBlocks < 0 || blockSize <= 0 {
		return fmt.Errorf("cache: bad geometry for %q: %d blocks of %v", key, numBlocks, blockSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.keys[key]; ok {
		if st.numBlocks != numBlocks || st.blockSize != blockSize {
			return fmt.Errorf("cache: %q re-registered with different geometry", key)
		}
		return nil
	}
	p.keys[key] = &keyState{name: key, numBlocks: numBlocks, blockSize: blockSize, cached: NewBitset(numBlocks)}
	return nil
}

// SetQuota sets key's cache quota. Raising a quota takes effect on
// future admissions; lowering it evicts uniformly random cached blocks
// until the key fits. The quota is clamped to the pool capacity.
func (p *QuotaPool) SetQuota(key string, quota unit.Bytes) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.keys[key]
	if !ok {
		return fmt.Errorf("cache: quota for unregistered key %q", key)
	}
	if quota < 0 {
		quota = 0
	}
	if quota > p.capacity {
		quota = p.capacity
	}
	p.quotas[key] = quota
	// Enforce shrink immediately: evict random blocks above the quota.
	for unit.Bytes(st.cached.Count())*st.blockSize > quota {
		p.evictRandomLocked(st)
	}
	return nil
}

// Quota reports key's quota (0 if never set).
func (p *QuotaPool) Quota(key string) unit.Bytes {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quotas[key]
}

// evictRandomLocked removes one uniformly random cached block of st;
// the caller holds p.mu.
func (p *QuotaPool) evictRandomLocked(st *keyState) {
	if st.cached.Count() == 0 {
		return
	}
	// Pick a uniformly random set bit: walk from a random start.
	target := p.rng.Intn(st.cached.Count())
	seen := 0
	for i := 0; i < st.numBlocks; i++ {
		if st.cached.Test(i) {
			if seen == target {
				st.cached.Clear(i)
				p.total -= st.blockSize
				p.met.Evictions.Inc()
				p.met.Resident.Set(float64(p.total))
				return
			}
			seen++
		}
	}
}

// Access implements Pool: hit if cached; on miss, admit while the key is
// under quota and the pool is under capacity.
func (p *QuotaPool) Access(key string, blk BlockID) (Outcome, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.keys[key]
	if !ok {
		return Outcome{}, fmt.Errorf("cache: access to unregistered key %q", key)
	}
	if int(blk) < 0 || int(blk) >= st.numBlocks {
		return Outcome{}, fmt.Errorf("cache: block %d out of range for %q (%d blocks)", blk, key, st.numBlocks)
	}
	if st.cached.Test(int(blk)) {
		p.met.Hits.Inc()
		return Outcome{Hit: true}, nil
	}
	p.met.Misses.Inc()
	quota := p.quotas[key]
	under := unit.Bytes(st.cached.Count()+1)*st.blockSize <= quota
	fits := p.total+st.blockSize <= p.capacity
	if under && fits {
		st.cached.Set(int(blk))
		p.total += st.blockSize
		p.met.Admissions.Inc()
		p.met.Resident.Set(float64(p.total))
		return Outcome{Admitted: true}, nil
	}
	return Outcome{}, nil
}

// Contains implements Pool.
func (p *QuotaPool) Contains(key string, blk BlockID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.keys[key]
	if !ok {
		return false
	}
	return st.cached.Test(int(blk))
}

// CachedBlocks implements Pool.
func (p *QuotaPool) CachedBlocks(key string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.keys[key]
	if !ok {
		return 0
	}
	return st.cached.Count()
}

// CachedBytes implements Pool.
func (p *QuotaPool) CachedBytes(key string) unit.Bytes {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.keys[key]
	if !ok {
		return 0
	}
	return unit.Bytes(st.cached.Count()) * st.blockSize
}

// TotalCachedBytes implements Pool.
func (p *QuotaPool) TotalCachedBytes() unit.Bytes {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Capacity implements Pool.
func (p *QuotaPool) Capacity() unit.Bytes {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity
}

// Resize changes the pool capacity — a cache-node loss or return.
// Shrinking evicts uniformly random blocks (largest keys first would
// bias the uniform access model) until the contents fit; quotas above
// the new capacity are clamped so future admissions stay feasible.
// Growing restores admission headroom but resurrects nothing.
func (p *QuotaPool) Resize(capacity unit.Bytes) {
	if capacity < 0 {
		capacity = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.capacity = capacity
	for key, q := range p.quotas {
		if q > capacity {
			p.quotas[key] = capacity
		}
	}
	for p.total > capacity {
		st := p.largestKeyLocked()
		if st == nil || st.cached.Count() == 0 {
			return
		}
		p.evictRandomLocked(st)
	}
}

// EvictFraction invalidates the given fraction of every key's cached
// blocks, uniformly at random — the contents that lived on a failed
// cache node. frac is clamped to [0, 1]; keys are visited in sorted
// order and eviction uses the pool's seeded RNG, so the surviving set
// is deterministic for a given seed.
func (p *QuotaPool) EvictFraction(frac float64) {
	if frac <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.keys))
	for k := range p.keys {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		st := p.keys[k]
		drop := int(math.Ceil(float64(st.cached.Count()) * frac))
		for i := 0; i < drop && st.cached.Count() > 0; i++ {
			p.evictRandomLocked(st)
		}
	}
}

// largestKeyLocked returns the key with the most cached bytes (ties
// broken by name, for determinism); the caller holds p.mu.
func (p *QuotaPool) largestKeyLocked() *keyState {
	var best *keyState
	var bestBytes unit.Bytes
	names := make([]string, 0, len(p.keys))
	for k := range p.keys {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		st := p.keys[k]
		b := unit.Bytes(st.cached.Count()) * st.blockSize
		if b > bestBytes {
			best, bestBytes = st, b
		}
	}
	return best
}

// Keys returns the registered keys in sorted order.
func (p *QuotaPool) Keys() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.keys))
	for k := range p.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DropKey evicts everything under key and forgets it — used when the
// last job using a private dataset finishes.
func (p *QuotaPool) DropKey(key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.keys[key]
	if !ok {
		return
	}
	p.total -= unit.Bytes(st.cached.Count()) * st.blockSize
	p.met.Evictions.Add(int64(st.cached.Count()))
	p.met.Resident.Set(float64(p.total))
	delete(p.keys, key)
	delete(p.quotas, key)
}

var _ Pool = (*QuotaPool)(nil)
