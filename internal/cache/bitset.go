// Package cache implements the cache substrate of SiloD's data manager:
// block-granularity cache pools with the policies the paper evaluates
// (uniform caching, LRU) plus analytical fluid models of both, used by
// the large-scale simulator where per-block simulation is intractable.
//
// Datasets are modeled at block granularity (default 64 MB) rather than
// item granularity; uniform caching's hit ratio c/d is independent of
// granularity, and blocks keep 20 TB datasets tractable (see DESIGN.md,
// substitutions).
package cache

import "math/bits"

// Bitset is a fixed-size bitmap over block IDs. SiloD's data manager
// maintains one per job to track accessed items within an epoch (§6,
// "delayed effectiveness").
type Bitset struct {
	words []uint64
	n     int
	count int
}

// NewBitset returns an empty bitset over n blocks.
func NewBitset(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len reports the domain size.
func (b *Bitset) Len() int { return b.n }

// Count reports the number of set bits.
func (b *Bitset) Count() int { return b.count }

// Test reports whether bit i is set. Out-of-range bits read as false.
func (b *Bitset) Test(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Set sets bit i and reports whether it was previously clear.
func (b *Bitset) Set(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	w, m := i/64, uint64(1)<<(uint(i)%64)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

// Clear clears bit i and reports whether it was previously set.
func (b *Bitset) Clear(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	w, m := i/64, uint64(1)<<(uint(i)%64)
	if b.words[w]&m == 0 {
		return false
	}
	b.words[w] &^= m
	b.count--
	return true
}

// Reset clears all bits.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.count = 0
}

// AndCount reports |b ∩ other|: e.g. how many of a job's accessed blocks
// are currently cached.
func (b *Bitset) AndCount(other *Bitset) int {
	n := len(b.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	var c int
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(b.words[i] & other.words[i])
	}
	return c
}

// NextClear returns the first clear bit at or after i, or -1 if none.
func (b *Bitset) NextClear(i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < b.n; i++ {
		w := b.words[i/64]
		if w == ^uint64(0) {
			// Whole word set: skip to its end.
			i = (i/64)*64 + 63
			continue
		}
		if w&(1<<(uint(i)%64)) == 0 {
			return i
		}
	}
	return -1
}
