package cache

import (
	"container/list"
	"fmt"
	"math"
	"sort"

	"repro/internal/unit"
)

// LRUPool is the Alluxio baseline: a single cluster-wide pool with
// least-recently-used eviction and no quota awareness. Every miss is
// admitted; the least recently used block anywhere in the pool is
// evicted to make room. Under DL training's epoch-shuffled,
// exactly-once access pattern this policy thrashes (§2.2, §7.1), which
// is precisely the behaviour the baseline must exhibit.
type LRUPool struct {
	capacity unit.Bytes
	keys     map[string]*lruKeyState
	order    *list.List // front = most recent; values are *lruEntry
	total    unit.Bytes
	met      PoolMetrics
}

type lruKeyState struct {
	keyState
	entries map[BlockID]*list.Element
}

type lruEntry struct {
	key string
	blk BlockID
}

// NewLRUPool returns an empty LRU pool.
func NewLRUPool(capacity unit.Bytes) *LRUPool {
	return &LRUPool{
		capacity: capacity,
		keys:     make(map[string]*lruKeyState),
		order:    list.New(),
	}
}

// Register implements Pool.
func (p *LRUPool) Register(key string, numBlocks int, blockSize unit.Bytes) error {
	if numBlocks < 0 || blockSize <= 0 {
		return fmt.Errorf("cache: bad geometry for %q: %d blocks of %v", key, numBlocks, blockSize)
	}
	if st, ok := p.keys[key]; ok {
		if st.numBlocks != numBlocks || st.blockSize != blockSize {
			return fmt.Errorf("cache: %q re-registered with different geometry", key)
		}
		return nil
	}
	p.keys[key] = &lruKeyState{
		keyState: keyState{name: key, numBlocks: numBlocks, blockSize: blockSize, cached: NewBitset(numBlocks)},
		entries:  make(map[BlockID]*list.Element),
	}
	return nil
}

// Access implements Pool: hits refresh recency; misses admit and evict
// LRU victims as needed.
func (p *LRUPool) Access(key string, blk BlockID) (Outcome, error) {
	st, ok := p.keys[key]
	if !ok {
		return Outcome{}, fmt.Errorf("cache: access to unregistered key %q", key)
	}
	if int(blk) < 0 || int(blk) >= st.numBlocks {
		return Outcome{}, fmt.Errorf("cache: block %d out of range for %q (%d blocks)", blk, key, st.numBlocks)
	}
	if el, ok := st.entries[blk]; ok {
		p.order.MoveToFront(el)
		p.met.Hits.Inc()
		return Outcome{Hit: true}, nil
	}
	p.met.Misses.Inc()
	if st.blockSize > p.capacity {
		return Outcome{}, nil // block can never fit
	}
	for p.total+st.blockSize > p.capacity {
		if !p.evictLRU() {
			return Outcome{}, nil
		}
	}
	el := p.order.PushFront(&lruEntry{key: key, blk: blk})
	st.entries[blk] = el
	st.cached.Set(int(blk))
	p.total += st.blockSize
	p.met.Admissions.Inc()
	p.met.Resident.Set(float64(p.total))
	return Outcome{Admitted: true}, nil
}

// evictLRU removes the least recently used block; false if empty.
func (p *LRUPool) evictLRU() bool {
	el := p.order.Back()
	if el == nil {
		return false
	}
	e := el.Value.(*lruEntry)
	st := p.keys[e.key]
	p.order.Remove(el)
	delete(st.entries, e.blk)
	st.cached.Clear(int(e.blk))
	p.total -= st.blockSize
	p.met.Evictions.Inc()
	p.met.Resident.Set(float64(p.total))
	return true
}

// Contains implements Pool.
func (p *LRUPool) Contains(key string, blk BlockID) bool {
	st, ok := p.keys[key]
	if !ok {
		return false
	}
	_, cached := st.entries[blk]
	return cached
}

// CachedBlocks implements Pool.
func (p *LRUPool) CachedBlocks(key string) int {
	st, ok := p.keys[key]
	if !ok {
		return 0
	}
	return len(st.entries)
}

// CachedBytes implements Pool.
func (p *LRUPool) CachedBytes(key string) unit.Bytes {
	st, ok := p.keys[key]
	if !ok {
		return 0
	}
	return unit.Bytes(len(st.entries)) * st.blockSize
}

// TotalCachedBytes implements Pool.
func (p *LRUPool) TotalCachedBytes() unit.Bytes { return p.total }

// Capacity implements Pool.
func (p *LRUPool) Capacity() unit.Bytes { return p.capacity }

// Resize changes the pool capacity — a cache-node loss or return.
// Shrinking evicts from the LRU tail until the contents fit (the
// blocks the policy would have evicted next anyway); growing restores
// admission headroom but resurrects nothing.
func (p *LRUPool) Resize(capacity unit.Bytes) {
	if capacity < 0 {
		capacity = 0
	}
	p.capacity = capacity
	for p.total > p.capacity {
		if !p.evictLRU() {
			return
		}
	}
}

// EvictFraction invalidates the given fraction of the pool's cached
// blocks — the contents that lived on a failed cache node. Victims come
// from the cold (LRU) end: without per-block placement there is no
// seeded randomness in this pool, and evicting the coldest share is
// deterministic and errs in the baseline's favour. frac is clamped to
// [0, 1].
func (p *LRUPool) EvictFraction(frac float64) {
	if frac <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	drop := int(math.Ceil(float64(p.order.Len()) * frac))
	for i := 0; i < drop; i++ {
		if !p.evictLRU() {
			return
		}
	}
}

// Keys returns the registered keys in sorted order.
func (p *LRUPool) Keys() []string {
	out := make([]string, 0, len(p.keys))
	for k := range p.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DropKey evicts everything under key and forgets it.
func (p *LRUPool) DropKey(key string) {
	st, ok := p.keys[key]
	if !ok {
		return
	}
	for blk, el := range st.entries {
		p.order.Remove(el)
		p.total -= st.blockSize
		st.cached.Clear(int(blk))
	}
	p.met.Evictions.Add(int64(len(st.entries)))
	p.met.Resident.Set(float64(p.total))
	delete(p.keys, key)
}

var _ Pool = (*LRUPool)(nil)
