package cache

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/unit"
)

// randStreams builds a randomized fluid-stream mix: mostly active scans
// of varied size/rate, with some idle streams sprinkled in.
func randStreams(rng *rand.Rand, n int) []FluidStream {
	streams := make([]FluidStream, n)
	for i := range streams {
		streams[i] = FluidStream{
			Size: unit.GiB(float64(1 + rng.Intn(500))),
			Rate: unit.MBpsOf(float64(rng.Intn(800))), // 0 => idle
		}
	}
	return streams
}

// TestCheLRUWarmHintIdentity is the cache-layer byte-identity gate for
// the warm-started Che bisection: whatever hint the caller passes —
// below τ, above τ, near τ, absurdly small or large — the hits AND the
// converged τ must be bitwise identical to the cold solve. The hint may
// only save occBytes evaluations, never change the trajectory's result.
func TestCheLRUWarmHintIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		streams := randStreams(rng, 1+rng.Intn(24))
		capacity := unit.GiB(float64(1 + rng.Intn(2000)))
		coldHits, coldTau := CheLRUWarm(capacity, streams, 0)
		hints := []float64{
			coldTau * 0.5,
			coldTau,
			coldTau * 2,
			1e-12,
			1e12,
			coldTau * (0.8 + 0.4*rng.Float64()),
		}
		for _, hint := range hints {
			if hint <= 0 {
				continue
			}
			warmHits, warmTau := CheLRUWarm(capacity, streams, hint)
			if math.Float64bits(warmTau) != math.Float64bits(coldTau) {
				t.Fatalf("trial %d hint %g: τ warm %v cold %v", trial, hint, warmTau, coldTau)
			}
			for i := range coldHits {
				if math.Float64bits(warmHits[i]) != math.Float64bits(coldHits[i]) {
					t.Fatalf("trial %d hint %g stream %d: hit warm %v cold %v",
						trial, hint, i, warmHits[i], coldHits[i])
				}
			}
		}
		// CheLRU is the documented cold wrapper.
		wrapped := CheLRU(capacity, streams)
		for i := range coldHits {
			if math.Float64bits(wrapped[i]) != math.Float64bits(coldHits[i]) {
				t.Fatalf("trial %d stream %d: CheLRU diverges from cold CheLRUWarm", trial, i)
			}
		}
	}
}

// TestCheLRUWarmFeedbackLoop replays the production usage: each round
// feeds the previous round's τ back as the hint while the stream mix
// drifts, and every round must match its own cold solve.
func TestCheLRUWarmFeedbackLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	streams := randStreams(rng, 16)
	capacity := unit.GiB(300)
	hint := 0.0
	for round := 0; round < 150; round++ {
		warmHits, warmTau := CheLRUWarm(capacity, streams, hint)
		coldHits, coldTau := CheLRUWarm(capacity, streams, 0)
		if math.Float64bits(warmTau) != math.Float64bits(coldTau) {
			t.Fatalf("round %d: τ warm %v cold %v (hint %v)", round, warmTau, coldTau, hint)
		}
		for i := range coldHits {
			if math.Float64bits(warmHits[i]) != math.Float64bits(coldHits[i]) {
				t.Fatalf("round %d stream %d: hit warm %v cold %v", round, i, warmHits[i], coldHits[i])
			}
		}
		hint = warmTau
		// Drift: progress changes rates, arrivals/departures swap streams.
		for i := range streams {
			if rng.Intn(3) == 0 {
				streams[i].Rate = unit.MBpsOf(float64(rng.Intn(800)))
			}
		}
		if round%20 == 19 {
			streams = randStreams(rng, 8+rng.Intn(16))
		}
	}
}
