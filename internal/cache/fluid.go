package cache

import (
	"math"

	"repro/internal/unit"
)

// FluidStream describes one active dataset scan for the fluid LRU
// model: a job (or set of jobs) reading a dataset of size Size at an
// aggregate rate Rate, shuffled once per epoch.
type FluidStream struct {
	Size unit.Bytes     // dataset size d
	Rate unit.Bandwidth // data-loading throughput f (bytes/s)
}

// epochPeriod returns the re-access period T = d/f of a block, or +Inf
// for an idle stream.
//
// silod:pure
func (s FluidStream) epochPeriod() float64 {
	if s.Rate <= 0 {
		return math.Inf(1)
	}
	return float64(s.Size) / float64(s.Rate)
}

// gapCDF is the CDF of the inter-access gap of a single block under
// epoch-shuffled exactly-once access: if a block lands at uniform
// positions in two consecutive epochs of length T, the gap is
// T·(1 - U1 + U2), triangular on (0, 2T). x is the gap, T the period.
//
// silod:pure
func gapCDF(x, T float64) float64 {
	if T <= 0 || math.IsInf(T, 1) {
		return 0
	}
	r := x / T
	switch {
	case r <= 0:
		return 0
	case r <= 1:
		return r * r / 2
	case r <= 2:
		return 1 - (2-r)*(2-r)/2
	default:
		return 1
	}
}

// gapSurvivalIntegral is ∫₀^y (1 - F(x)) dx for the triangular gap CDF,
// used for the stationary "age < τ" occupancy probability.
// silod:pure
func gapSurvivalIntegral(y, T float64) float64 {
	if T <= 0 || math.IsInf(T, 1) {
		return 0
	}
	if y <= 0 {
		return 0
	}
	if y >= 2*T {
		return T // the full mean
	}
	if y <= T {
		return y - y*y*y/(6*T*T)
	}
	// Split at T: ∫₀^T + ∫_T^y.
	head := T - T/6
	u := 2 - y/T
	tail := T/6 - T*u*u*u/6
	return head + tail
}

// occupancy returns the stationary probability that a block of a stream
// with period T is in an LRU cache with characteristic time τ.
// silod:pure
func occupancy(tau, T float64) float64 {
	if math.IsInf(T, 1) {
		return 0
	}
	if T <= 0 {
		return 1
	}
	// Branch instead of math.Min: both inputs are finite here (T > 0,
	// the integral is bounded by T), so the result is bit-identical and
	// the function call drops out of the bisection's innermost loop.
	if v := gapSurvivalIntegral(tau, T) / T; v < 1 {
		return v
	}
	return 1
}

// CheLRU solves the Che characteristic-time approximation for a shared
// LRU cache of the given capacity under epoch-shuffled DL access. It
// returns the per-stream expected hit ratios. The model reproduces the
// qualitative LRU behaviours the paper reports: thrashing when the
// aggregate working set exceeds capacity, and faster (more
// cache-efficient) jobs indirectly receiving more cache because their
// blocks are re-touched sooner (§7.1.2).
//
// The Che fixed point is a deterministic function of (capacity,
// streams); the simulator replays it byte-identically.
//
// silod:pure
func CheLRU(capacity unit.Bytes, streams []FluidStream) []float64 {
	hits, _ := CheLRUWarm(capacity, streams, 0)
	return hits
}

// CheLRUWarm is CheLRU with a warm-start hint: a τ from an earlier,
// nearby solve (0 means cold). It also returns the converged τ so the
// caller can feed it back. The hint never changes the answer: the
// bisection replays the exact cold trajectory over [0, 2·maxT], and the
// hint only pre-establishes evaluated below/above bounds (two probes at
// hint·(1∓5%) on the CURRENT streams) so mids outside the open interval
// between them take the verdict monotonicity dictates. occBytes is
// mathematically monotone nondecreasing in τ (each term's derivative is
// a survival probability ≥ 0); the deduction trusts that monotonicity
// down to the last float64 ulp, which the engine-level byte-identity
// gates (full-resolve vs incremental) validate end to end.
//
// silod:pure
func CheLRUWarm(capacity unit.Bytes, streams []FluidStream, hint float64) ([]float64, float64) {
	hits := make([]float64, len(streams))
	if capacity <= 0 || len(streams) == 0 {
		return hits, 0
	}
	// Periods are loop-invariant across the ~55 bisection evaluations,
	// so the per-stream division happens once here.
	periods := make([]float64, len(streams))
	var totalActive unit.Bytes
	maxT := 0.0
	for i, s := range streams {
		T := s.epochPeriod()
		periods[i] = T
		if !math.IsInf(T, 1) {
			totalActive += s.Size
			if T > maxT {
				maxT = T
			}
		}
	}
	if totalActive == 0 {
		return hits, 0
	}
	if totalActive <= capacity {
		// Everything fits: after warm-up every access hits.
		for i, s := range streams {
			if s.Rate > 0 {
				hits[i] = 1
			}
		}
		return hits, 0
	}
	// Bisection on τ: occupancy is monotone increasing in τ.
	occBytes := func(tau float64) float64 {
		var total float64
		for i, s := range streams {
			total += float64(s.Size) * occupancy(tau, periods[i])
		}
		return total
	}
	lo, hi := 0.0, 2*maxT
	target := float64(capacity)
	// knownBelow/knownAbove bracket τ with verdicts evaluated on the
	// current streams: occBytes(knownBelow) < target <= occBytes(knownAbove).
	knownBelow, knownAbove := 0.0, math.Inf(1)
	if hint > 0 {
		if c := hint * 0.95; c > 0 && c < hi {
			if occBytes(c) < target {
				knownBelow = c
			} else {
				knownAbove = c
			}
		}
		if c := hint * 1.05; c > knownBelow && c < knownAbove && c < hi {
			if occBytes(c) < target {
				knownBelow = c
			} else {
				knownAbove = c
			}
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		prevLo, prevHi := math.Float64bits(lo), math.Float64bits(hi)
		var below bool
		switch {
		case mid <= knownBelow:
			below = true
		case mid >= knownAbove:
			below = false
		default:
			below = occBytes(mid) < target
			if below {
				knownBelow = mid
			} else {
				knownAbove = mid
			}
		}
		if below {
			lo = mid
		} else {
			hi = mid
		}
		// Bit-level fixed point: once an iteration leaves the bracket
		// unchanged (the midpoint has collapsed onto an endpoint at
		// float64 precision), every remaining iteration repeats it
		// exactly, so stopping cannot change τ by a single bit.
		if math.Float64bits(lo) == prevLo && math.Float64bits(hi) == prevHi {
			break
		}
	}
	tau := (lo + hi) / 2
	for i := range streams {
		hits[i] = gapCDF(tau, periods[i])
	}
	return hits, tau
}
