package cache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/simrng"
	"repro/internal/unit"
)

// TestQuotaPoolConcurrentAccess drives a QuotaPool the way the testbed
// does: one loader goroutine per job reading its dataset while the
// scheduler resizes quotas concurrently. Run under -race (make
// verify); afterwards the pool's books must balance exactly — per-key
// bytes sum to the pool total and respect the final quotas.
func TestQuotaPoolConcurrentAccess(t *testing.T) {
	const (
		workers   = 8
		blocks    = 64
		accesses  = 500
		blockSize = unit.MB
	)
	p := NewQuotaPool(unit.Bytes(workers*blocks)*blockSize, simrng.New(7))
	keys := make([]string, workers)
	for w := range keys {
		keys[w] = fmt.Sprintf("ds%d", w)
		if err := p.Register(keys[w], blocks, blockSize); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := keys[w]
			rng := simrng.New(int64(100 + w))
			for i := 0; i < accesses; i++ {
				if i%50 == 0 {
					// Shrink-then-grow: exercises random eviction
					// against concurrent admissions on other keys.
					q := unit.Bytes((i/50)%blocks) * blockSize
					if err := p.SetQuota(key, q); err != nil {
						t.Error(err)
						return
					}
				}
				if _, err := p.Access(key, BlockID(rng.Intn(blocks))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Deterministic final-state invariants (the exact cached set depends
	// on interleaving; the accounting must not).
	var sum unit.Bytes
	for _, key := range keys {
		cached := p.CachedBytes(key)
		sum += cached
		if q := p.Quota(key); cached > q {
			t.Errorf("%s: cached %v exceeds quota %v", key, cached, q)
		}
		if n := p.CachedBlocks(key); unit.Bytes(n)*blockSize != cached {
			t.Errorf("%s: %d blocks but %v bytes", key, n, cached)
		}
	}
	if total := p.TotalCachedBytes(); total != sum {
		t.Errorf("pool total %v != per-key sum %v", total, sum)
	}
	if total := p.TotalCachedBytes(); total > p.Capacity() {
		t.Errorf("pool total %v exceeds capacity %v", total, p.Capacity())
	}
}
