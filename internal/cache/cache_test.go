package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/simrng"
	"repro/internal/unit"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130) // spans three words
	if b.Count() != 0 || b.Len() != 130 {
		t.Fatal("fresh bitset")
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Set(i) {
			t.Errorf("Set(%d) reported already set", i)
		}
		if !b.Test(i) {
			t.Errorf("Test(%d) false after set", i)
		}
	}
	if b.Count() != 4 {
		t.Errorf("count %d", b.Count())
	}
	if b.Set(63) {
		t.Error("double set reported new")
	}
	if !b.Clear(63) || b.Test(63) {
		t.Error("clear failed")
	}
	if b.Clear(63) {
		t.Error("double clear reported cleared")
	}
	// Out-of-range accesses are harmless.
	if b.Set(-1) || b.Set(130) || b.Test(999) || b.Clear(-5) {
		t.Error("out-of-range access misbehaved")
	}
	b.Reset()
	if b.Count() != 0 || b.Test(0) {
		t.Error("reset")
	}
}

func TestBitsetCountInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewBitset(256)
		ref := make(map[int]bool)
		for _, op := range ops {
			i := int(op % 256)
			if op%2 == 0 {
				b.Set(i)
				ref[i] = true
			} else {
				b.Clear(i)
				delete(ref, i)
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		for i := 0; i < 256; i++ {
			if b.Test(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsetAndCountAndNextClear(t *testing.T) {
	a, b := NewBitset(128), NewBitset(128)
	for i := 0; i < 128; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 128; i += 3 {
		b.Set(i)
	}
	want := 0
	for i := 0; i < 128; i++ {
		if i%2 == 0 && i%3 == 0 {
			want++
		}
	}
	if got := a.AndCount(b); got != want {
		t.Errorf("AndCount = %d, want %d", got, want)
	}
	full := NewBitset(70)
	for i := 0; i < 70; i++ {
		full.Set(i)
	}
	if full.NextClear(0) != -1 {
		t.Error("full bitset has a clear bit")
	}
	full.Clear(69)
	if full.NextClear(0) != 69 {
		t.Error("NextClear missed bit 69")
	}
}

func TestQuotaPoolAdmission(t *testing.T) {
	p := NewQuotaPool(10*unit.MB, simrng.New(1))
	if err := p.Register("ds", 10, unit.MB); err != nil {
		t.Fatal(err)
	}
	if err := p.SetQuota("ds", 3*unit.MB); err != nil {
		t.Fatal(err)
	}
	// First three misses admit; the fourth doesn't (quota).
	for i := 0; i < 3; i++ {
		out, err := p.Access("ds", BlockID(i))
		if err != nil {
			t.Fatal(err)
		}
		if out.Hit || !out.Admitted {
			t.Errorf("block %d: %+v", i, out)
		}
	}
	out, _ := p.Access("ds", 3)
	if out.Hit || out.Admitted {
		t.Errorf("over-quota access admitted: %+v", out)
	}
	// Uniform caching never evicts: re-access of cached blocks hits.
	for i := 0; i < 3; i++ {
		out, _ := p.Access("ds", BlockID(i))
		if !out.Hit {
			t.Errorf("block %d evicted under uniform caching", i)
		}
	}
	if p.CachedBlocks("ds") != 3 || p.CachedBytes("ds") != 3*unit.MB {
		t.Error("accounting")
	}
}

func TestQuotaPoolShrinkEvictsRandomly(t *testing.T) {
	p := NewQuotaPool(100*unit.MB, simrng.New(2))
	if err := p.Register("ds", 100, unit.MB); err != nil {
		t.Fatal(err)
	}
	if err := p.SetQuota("ds", 100*unit.MB); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.Access("ds", BlockID(i))
	}
	if err := p.SetQuota("ds", 40*unit.MB); err != nil {
		t.Fatal(err)
	}
	if got := p.CachedBlocks("ds"); got != 40 {
		t.Fatalf("after shrink: %d blocks cached, want 40", got)
	}
	if p.TotalCachedBytes() != 40*unit.MB {
		t.Error("pool total after shrink")
	}
	// Survivors should not be a contiguous prefix (random eviction).
	prefix := true
	for i := 0; i < 40; i++ {
		if !p.Contains("ds", BlockID(i)) {
			prefix = false
			break
		}
	}
	if prefix {
		t.Error("eviction kept exactly the first 40 blocks; expected random survivors")
	}
}

func TestQuotaPoolCapacityBound(t *testing.T) {
	p := NewQuotaPool(5*unit.MB, simrng.New(3))
	p.Register("a", 10, unit.MB)
	p.Register("b", 10, unit.MB)
	p.SetQuota("a", 4*unit.MB)
	p.SetQuota("b", 4*unit.MB) // quotas oversubscribe; capacity still binds
	for i := 0; i < 4; i++ {
		p.Access("a", BlockID(i))
	}
	admitted := 0
	for i := 0; i < 4; i++ {
		out, _ := p.Access("b", BlockID(i))
		if out.Admitted {
			admitted++
		}
	}
	if admitted != 1 {
		t.Errorf("capacity allowed %d admissions for b, want 1", admitted)
	}
	if p.TotalCachedBytes() > 5*unit.MB {
		t.Error("pool exceeded capacity")
	}
}

func TestQuotaPoolErrors(t *testing.T) {
	p := NewQuotaPool(unit.MB, simrng.New(4))
	if _, err := p.Access("nope", 0); err == nil {
		t.Error("unregistered access accepted")
	}
	if err := p.SetQuota("nope", 1); err == nil {
		t.Error("unregistered quota accepted")
	}
	if err := p.Register("ds", -1, unit.MB); err == nil {
		t.Error("negative geometry accepted")
	}
	if err := p.Register("ds", 4, unit.MB); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("ds", 4, unit.MB); err != nil {
		t.Error("idempotent re-register rejected")
	}
	if err := p.Register("ds", 5, unit.MB); err == nil {
		t.Error("geometry change accepted")
	}
	if _, err := p.Access("ds", 99); err == nil {
		t.Error("out-of-range block accepted")
	}
}

func TestQuotaPoolDropKey(t *testing.T) {
	p := NewQuotaPool(10*unit.MB, simrng.New(5))
	p.Register("ds", 10, unit.MB)
	p.SetQuota("ds", 10*unit.MB)
	for i := 0; i < 5; i++ {
		p.Access("ds", BlockID(i))
	}
	p.DropKey("ds")
	if p.TotalCachedBytes() != 0 {
		t.Error("DropKey left bytes behind")
	}
	if len(p.Keys()) != 0 {
		t.Error("DropKey left the key")
	}
}

func TestLRUPoolEviction(t *testing.T) {
	p := NewLRUPool(3 * unit.MB)
	p.Register("ds", 10, unit.MB)
	for i := 0; i < 3; i++ {
		p.Access("ds", BlockID(i))
	}
	// Touch block 0 so block 1 is LRU.
	if out, _ := p.Access("ds", 0); !out.Hit {
		t.Fatal("warm block missed")
	}
	p.Access("ds", 3) // evicts block 1
	if p.Contains("ds", 1) {
		t.Error("LRU victim not evicted")
	}
	if !p.Contains("ds", 0) || !p.Contains("ds", 2) || !p.Contains("ds", 3) {
		t.Error("wrong eviction victim")
	}
}

// TestLRUPoolThrashing demonstrates the §2.2 pathology: a cyclic scan
// over a dataset larger than the cache yields almost no hits.
func TestLRUPoolThrashing(t *testing.T) {
	p := NewLRUPool(50 * unit.MB)
	p.Register("ds", 100, unit.MB)
	hits := 0
	for epoch := 0; epoch < 3; epoch++ {
		for i := 0; i < 100; i++ { // sequential scan: worst case
			out, _ := p.Access("ds", BlockID(i))
			if out.Hit {
				hits++
			}
		}
	}
	if hits != 0 {
		t.Errorf("sequential scan of 2x-cache dataset got %d hits; LRU should thrash to 0", hits)
	}
}

func TestLRUPoolMultiKeyFastJobWins(t *testing.T) {
	// Two datasets, one accessed 4x as often: LRU should hold more of
	// the hot one (the paper's "fast jobs indirectly benefit").
	p := NewLRUPool(40 * unit.MB)
	p.Register("hot", 40, unit.MB)
	p.Register("cold", 40, unit.MB)
	rng := simrng.New(6)
	for i := 0; i < 4000; i++ {
		if rng.Float64() < 0.8 {
			p.Access("hot", BlockID(rng.Intn(40)))
		} else {
			p.Access("cold", BlockID(rng.Intn(40)))
		}
	}
	if p.CachedBlocks("hot") <= p.CachedBlocks("cold") {
		t.Errorf("hot %d <= cold %d cached blocks", p.CachedBlocks("hot"), p.CachedBlocks("cold"))
	}
	if p.TotalCachedBytes() > 40*unit.MB {
		t.Error("capacity exceeded")
	}
}

func TestLRUPoolDropKey(t *testing.T) {
	p := NewLRUPool(10 * unit.MB)
	p.Register("a", 10, unit.MB)
	p.Register("b", 10, unit.MB)
	for i := 0; i < 5; i++ {
		p.Access("a", BlockID(i))
		p.Access("b", BlockID(i))
	}
	p.DropKey("a")
	if p.CachedBlocks("a") != 0 {
		t.Error("a still cached")
	}
	if p.CachedBlocks("b") != 5 {
		t.Error("b affected by dropping a")
	}
	// Freed space is reusable.
	for i := 5; i < 10; i++ {
		out, _ := p.Access("b", BlockID(i))
		if !out.Admitted {
			t.Error("freed space not reusable")
		}
	}
}

func TestPoolInvariantsProperty(t *testing.T) {
	// Property: under random accesses, neither pool ever exceeds its
	// capacity and CachedBytes is consistent with Contains.
	f := func(seed int64, ops []uint16) bool {
		qp := NewQuotaPool(16*unit.MB, simrng.New(seed))
		lp := NewLRUPool(16 * unit.MB)
		for _, p := range []Pool{qp, lp} {
			p.Register("a", 32, unit.MB)
			p.Register("b", 32, unit.MB)
		}
		qp.SetQuota("a", 8*unit.MB)
		qp.SetQuota("b", 12*unit.MB)
		for _, op := range ops {
			key := "a"
			if op%2 == 1 {
				key = "b"
			}
			blk := BlockID(op % 32)
			if _, err := qp.Access(key, blk); err != nil {
				return false
			}
			if _, err := lp.Access(key, blk); err != nil {
				return false
			}
		}
		for _, p := range []Pool{qp, lp} {
			if p.TotalCachedBytes() > p.Capacity() {
				return false
			}
			if p.CachedBytes("a")+p.CachedBytes("b") != p.TotalCachedBytes() {
				return false
			}
		}
		return qp.CachedBytes("a") <= 8*unit.MB && qp.CachedBytes("b") <= 12*unit.MB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCheLRUEverythingFits(t *testing.T) {
	hits := CheLRU(unit.GiB(10), cacheList{{unit.GiB(4), unit.MBpsOf(100)}, {unit.GiB(4), unit.MBpsOf(10)}}.streams())
	for i, h := range hits {
		if h != 1 {
			t.Errorf("stream %d hit %v, want 1 when everything fits", i, h)
		}
	}
}

// cache1 keeps the test table compact.
type cache1 struct {
	size unit.Bytes
	rate unit.Bandwidth
}

type cacheList []cache1

func (c cacheList) streams() []FluidStream {
	out := make([]FluidStream, len(c))
	for i, s := range c {
		out[i] = FluidStream{Size: s.size, Rate: s.rate}
	}
	return out
}

func TestCheLRUSingleStreamMatchesExactAnalysis(t *testing.T) {
	// One stream with d = 2C: the exact shuffled-epoch analysis gives
	// hit = P(gap < (C/d)·T·...) = F(tau) with occupancy(tau) = C/d.
	hits := CheLRU(unit.GiB(1), cacheList{{unit.GiB(2), unit.MBpsOf(50)}}.streams())
	if hits[0] < 0.08 || hits[0] > 0.25 {
		t.Errorf("single-stream d=2C hit %v, want ~0.12-0.15", hits[0])
	}
}

func TestCheLRUFavorsFastStreams(t *testing.T) {
	hits := CheLRU(unit.GiB(2), cacheList{
		{unit.GiB(4), unit.MBpsOf(200)}, // fast: short re-access period
		{unit.GiB(4), unit.MBpsOf(10)},  // slow
	}.streams())
	if hits[0] <= hits[1] {
		t.Errorf("fast stream hit %v <= slow %v; LRU should favor fast jobs", hits[0], hits[1])
	}
}

func TestCheLRUEdgeCases(t *testing.T) {
	if hits := CheLRU(0, cacheList{{unit.GiB(1), unit.MBpsOf(1)}}.streams()); hits[0] != 0 {
		t.Error("zero capacity should hit 0")
	}
	if hits := CheLRU(unit.GiB(1), nil); len(hits) != 0 {
		t.Error("no streams")
	}
	hits := CheLRU(unit.GiB(1), cacheList{{unit.GiB(2), 0}}.streams())
	if hits[0] != 0 {
		t.Error("idle stream should hit 0")
	}
	// Hits are always within [0,1].
	hits = CheLRU(unit.GiB(3), cacheList{
		{unit.GiB(1), unit.MBpsOf(500)},
		{unit.GiB(8), unit.MBpsOf(3)},
		{unit.GiB(2), 0},
	}.streams())
	for i, h := range hits {
		if h < 0 || h > 1 {
			t.Errorf("hit[%d] = %v outside [0,1]", i, h)
		}
	}
}
