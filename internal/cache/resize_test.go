package cache

import (
	"testing"

	"repro/internal/simrng"
	"repro/internal/unit"
)

// fillKey admits blocks 0..n-1 for key, failing the test if any
// admission is refused.
func fillKey(t *testing.T, p *QuotaPool, key string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		out, err := p.Access(key, BlockID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !out.Admitted {
			t.Fatalf("block %d of %s not admitted", i, key)
		}
	}
}

// TestQuotaPoolResizeToZero: losing every cache node drains the pool
// completely, clamps quotas, and refuses admissions until a grow.
func TestQuotaPoolResizeToZero(t *testing.T) {
	const blk = unit.Bytes(64)
	p := NewQuotaPool(blk*8, simrng.New(1))
	if err := p.Register("ds", 8, blk); err != nil {
		t.Fatal(err)
	}
	if err := p.SetQuota("ds", blk*8); err != nil {
		t.Fatal(err)
	}
	fillKey(t, p, "ds", 8)

	p.Resize(0)
	if got := p.TotalCachedBytes(); got != 0 {
		t.Errorf("resize to zero left %v cached", got)
	}
	if got := p.Quota("ds"); got != 0 {
		t.Errorf("quota not clamped to zero capacity: %v", got)
	}
	out, err := p.Access("ds", 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Hit || out.Admitted {
		t.Errorf("zero-capacity pool served %+v", out)
	}
	// Negative capacity clamps to zero.
	p.Resize(unit.Bytes(-1))
	if got := p.Capacity(); got != 0 {
		t.Errorf("negative resize left capacity %v", got)
	}
	// Growing restores headroom but resurrects nothing; quota must be
	// re-raised since it was clamped.
	p.Resize(blk * 4)
	if got := p.TotalCachedBytes(); got != 0 {
		t.Errorf("grow resurrected %v", got)
	}
	if err := p.SetQuota("ds", blk*4); err != nil {
		t.Fatal(err)
	}
	fillKey(t, p, "ds", 4)
}

// TestQuotaPoolResizeBlockRounding: a capacity that is not a whole
// number of blocks must terminate eviction at the last whole block that
// fits — no livelock, no overshoot below the feasible occupancy.
func TestQuotaPoolResizeBlockRounding(t *testing.T) {
	const blk = unit.Bytes(64)
	p := NewQuotaPool(blk*8, simrng.New(2))
	if err := p.Register("ds", 8, blk); err != nil {
		t.Fatal(err)
	}
	if err := p.SetQuota("ds", blk*8); err != nil {
		t.Fatal(err)
	}
	fillKey(t, p, "ds", 8)

	// 2.5 blocks of capacity: only 2 whole blocks can stay.
	p.Resize(blk*2 + blk/2)
	if got := p.TotalCachedBytes(); got != blk*2 {
		t.Errorf("cached %v after fractional resize, want %v", got, blk*2)
	}
	if got := p.CachedBlocks("ds"); got != 2 {
		t.Errorf("%d blocks survive, want 2", got)
	}
	// The clamped quota is the raw capacity; a further admission would
	// put a third block over capacity and must be refused.
	out, err := p.Access("ds", 7)
	if err != nil {
		t.Fatal(err)
	}
	if out.Admitted {
		t.Error("admission over fractional capacity")
	}
}

// TestQuotaPoolResizeAtExactQuota: a key sitting at exactly its quota
// when the pool shrinks to exactly that occupancy loses nothing; one
// byte less evicts a whole block.
func TestQuotaPoolResizeAtExactQuota(t *testing.T) {
	const blk = unit.Bytes(64)
	p := NewQuotaPool(blk*8, simrng.New(3))
	if err := p.Register("ds", 8, blk); err != nil {
		t.Fatal(err)
	}
	if err := p.SetQuota("ds", blk*4); err != nil {
		t.Fatal(err)
	}
	fillKey(t, p, "ds", 4)

	p.Resize(blk * 4) // exactly the current occupancy
	if got := p.CachedBlocks("ds"); got != 4 {
		t.Errorf("resize to exact occupancy evicted: %d blocks left", got)
	}
	if got := p.Quota("ds"); got != blk*4 {
		t.Errorf("quota disturbed at exact fit: %v", got)
	}

	p.Resize(blk*4 - 1) // one byte under: one whole block must go
	if got := p.CachedBlocks("ds"); got != 3 {
		t.Errorf("one-byte shrink left %d blocks, want 3", got)
	}
	if got := p.Quota("ds"); got != blk*4-1 {
		t.Errorf("quota not clamped to new capacity: %v", got)
	}
}
