// Fairshare reproduces the paper's Figure 4 motivating example: two
// identical ResNet-50 jobs on a 2-GPU cluster with 1.4 TB cache and a
// 50 MB/s remote link. SiloD's max-min co-design serves both jobs
// equally; Quiver's scheduling-oblivious cache starves one of them
// (the paper's 114 vs 52 MB/s steady state).
//
//	go run ./examples/fairshare
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	r, err := experiments.Figure4(experiments.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	r.Table().Render(os.Stdout)
	fmt.Println()
	fmt.Printf("SiloD min/avg speed: %.1f / %.1f MB/s\n", r.SiloDMin, r.SiloDAvg)
	fmt.Printf("Quiver min/avg speed: %.1f / %.1f MB/s\n", r.QuiverMin, r.QuiverAvg)
	fmt.Printf("max-min co-design lifts the worst job by %.2fx\n", r.SiloDMin/r.QuiverMin)
}
