// Controlplane spins up the full SiloD deployment in one process — the
// data-manager service and the scheduler service on loopback HTTP —
// submits two jobs through the client, runs a scheduling round, streams
// a few block reads through the data manager, and prints the resulting
// allocations and access statistics.
//
//	go run ./examples/controlplane
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/datamgr"
	"repro/internal/policy"
	"repro/internal/unit"
	"repro/internal/workload"
)

func main() {
	// Data manager: 1 TB cache, 200 MB/s egress.
	mgr := datamgr.New(unit.TiB(1), unit.MBpsOf(200), 42, nil)
	dmSrv := httptest.NewServer(controlplane.NewDataManagerServer(mgr))
	defer dmSrv.Close()
	dm := controlplane.NewClient(dmSrv.URL)

	// Scheduler: Gavel max-min with SiloD storage co-design, driving
	// the data manager over HTTP.
	pol, err := policy.Build(policy.GavelKind, policy.SiloD, 42)
	if err != nil {
		log.Fatal(err)
	}
	cluster := core.Cluster{GPUs: 8, Cache: unit.TiB(1), RemoteIO: unit.MBpsOf(200)}
	sched, err := controlplane.NewSchedulerServer(cluster, pol, dm, time.Now)
	if err != nil {
		log.Fatal(err)
	}
	schedSrv := httptest.NewServer(sched)
	defer schedSrv.Close()
	client := controlplane.NewClient(schedSrv.URL)

	// Submit two jobs with profiles from the model catalog.
	submit := func(id, model, ds string, size unit.Bytes, gpus int) {
		m, err := workload.ModelByName(model)
		if err != nil {
			log.Fatal(err)
		}
		spec := workload.JobSpec{ID: id, Model: m,
			Dataset: workload.Dataset{Name: ds, Size: size}, NumGPUs: gpus}
		spec.NumSteps = int64(5 * float64(size) / float64(spec.StepBytesTotal()))
		if err := client.SubmitJob(controlplane.SubmitJobRequest{
			JobID: id, Model: model, Dataset: ds, DatasetSize: size,
			NumGPUs: gpus, IdealThroughput: spec.IdealThroughput(),
			TotalBytes: spec.TotalBytes(),
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted %s (%s on %s, ideal %v)\n", id, model, ds, spec.IdealThroughput())
	}
	submit("rn50", "ResNet-50", "imagenet1k", unit.GiB(143), 1)
	submit("bert", "BERT", "websearch-sample", unit.GiB(600), 4)

	// One scheduling round: GPUs + cache quotas + remote IO, jointly.
	if err := client.TriggerSchedule(); err != nil {
		log.Fatal(err)
	}
	jobs, err := client.ListJobs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nallocations after one round:")
	for _, j := range jobs {
		fmt.Printf("  %-5s gpus=%d cache=%v remoteIO=%v\n",
			j.JobID, j.GPUs, j.CacheQuota, j.RemoteIO)
	}

	// Stream some reads through the data manager like a FUSE client.
	if err := dm.EpochStart("rn50"); err != nil {
		log.Fatal(err)
	}
	hits := 0
	for pass := 0; pass < 2; pass++ {
		for blk := 0; blk < 8; blk++ {
			r, err := dm.Read("rn50", blk)
			if err != nil {
				log.Fatal(err)
			}
			if r.Hit {
				hits++
			}
		}
		if err := dm.EpochStart("rn50"); err != nil {
			log.Fatal(err)
		}
	}
	st, err := dm.Stats("rn50")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrn50 after two mini-epochs of 8 blocks: hits=%d misses=%d remote=%v effective=%v\n",
		st.HitBlocks, st.MissBlocks, st.RemoteBytes, st.EffectiveCached)

	// The annotations a restarted data manager would recover from.
	ann, err := client.Annotations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npersisted annotations: %d jobs, %d datasets, %d cache quotas\n",
		len(ann.Jobs), len(ann.Datasets), len(ann.CacheQuota))
}
