// Quickstart: the SiloD performance estimator and one joint scheduling
// round.
//
// It walks through the paper's core ideas on a 2-GPU cluster: the
// closed-form SiloDPerf estimator (Eq. 4), cache efficiency (Eq. 5),
// and a Gavel max-min round that allocates GPUs, cache and remote IO
// together (Algorithm 1).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/policy"
	"repro/internal/unit"
	"repro/internal/workload"
)

func main() {
	// A ResNet-50 job training ImageNet-22k on one V100: its ideal
	// data-consumption rate f* and dataset size d are all SiloD needs.
	rn50, err := workload.ModelByName("ResNet-50")
	if err != nil {
		log.Fatal(err)
	}
	im22k, err := workload.DatasetByName("ImageNet-22k")
	if err != nil {
		log.Fatal(err)
	}
	profile := estimator.JobProfile{
		IdealThroughput: rn50.IdealIOPerGPU,
		DatasetSize:     im22k.Size,
	}

	fmt.Println("== SiloDPerf (Eq. 4): min(f*, b / (1 - c/d)) ==")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		r := estimator.Resources{
			Cache:    unit.Bytes(frac * float64(im22k.Size)),
			RemoteIO: unit.MBpsOf(50),
		}
		fmt.Printf("  cache %3.0f%% of dataset, 50 MB/s remote -> %s (IO-bound: %v)\n",
			frac*100, profile.Perf(r), profile.IOBound(r))
	}

	fmt.Println("\n== Cache efficiency (Eq. 5): remote IO saved per GB of cache ==")
	for _, j := range workload.Figure6Jobs()[:4] {
		fmt.Printf("  %-15s on %-12s: %.2f MB/s per GB\n",
			j.Model.Name, j.Dataset.Name, j.CacheEfficiency())
	}

	// One joint scheduling round: two jobs share a 2-GPU cluster with
	// 1.4 TB cache and a 50 MB/s remote link (the Figure 4 setting).
	fmt.Println("\n== One Gavel(max-min)+SiloD scheduling round ==")
	cluster := core.Cluster{GPUs: 2, Cache: unit.TiB(1.4), RemoteIO: unit.MBpsOf(50)}
	jobs := []core.JobView{
		{
			ID: "job-0", NumGPUs: 1, Profile: profile,
			DatasetKey: "imagenet22k-a", DatasetSize: im22k.Size,
			RemainingBytes: 10 * im22k.Size,
		},
		{
			ID: "job-1", NumGPUs: 1, Profile: profile,
			DatasetKey: "imagenet22k-b", DatasetSize: im22k.Size,
			RemainingBytes: 10 * im22k.Size,
		},
	}
	pol, err := policy.Build(policy.GavelKind, policy.SiloD, 1)
	if err != nil {
		log.Fatal(err)
	}
	framework := &core.Framework{Policy: pol}
	assignment, err := framework.Schedule(cluster, 0, jobs)
	if err != nil {
		log.Fatal(err)
	}
	for _, j := range jobs {
		fmt.Printf("  %s: %d GPUs, cache %v, remote IO %v\n",
			j.ID, assignment.GPUs[j.ID],
			assignment.CacheQuota[j.DatasetKey], assignment.RemoteIO[j.ID])
	}
}
