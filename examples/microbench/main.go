// Microbench runs the paper's 8-V100 micro-benchmark (§7.1.1) across
// all four cache systems and both simulation engines, plus the
// concurrent testbed, and prints Table 6 and the Figure 9 throughput
// timeline.
//
//	go run ./examples/microbench          # simulators only (seconds)
//	go run ./examples/microbench -testbed # also the wall-clock testbed
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	withTestbed := flag.Bool("testbed", false, "also run the concurrent scaled-time testbed")
	flag.Parse()

	jobs, err := experiments.MicroBenchJobs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Workload (four 1-GPU image jobs + one 4-GPU BERT job):")
	for _, j := range jobs {
		fmt.Printf("  %-8s %-15s on %-16s %d GPU(s), %5.2f epochs, ideal %s\n",
			j.ID, j.Model.Name, j.Dataset.Name, j.NumGPUs, j.Epochs(), j.IdealThroughput())
	}
	cl := experiments.MicroCluster()
	fmt.Printf("Cluster: %d GPUs, %v cache, %v remote IO\n\n", cl.GPUs, cl.Cache, cl.RemoteIO)

	r, err := experiments.Table6(experiments.Table6Options{
		Options:     experiments.Options{Seed: 42},
		WithTestbed: *withTestbed,
	})
	if err != nil {
		log.Fatal(err)
	}
	r.Table().Render(os.Stdout)
	fmt.Println()
	fmt.Print(r.Figure9(10))
}
