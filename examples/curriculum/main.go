// Curriculum demonstrates the §7.4 irregular-access workload: a
// ResNet-50 job training ImageNet-22k with curriculum learning. Samples
// are ordered by difficulty and each batch draws uniformly from the
// prefix admitted by the exponential pacing function (Eq. 10), so there
// is no epoch and items repeat — under that pattern LRU caching no
// longer thrashes and matches uniform caching, which is why SiloD
// schedules such jobs in a fallback partition (§6).
//
//	go run ./examples/curriculum
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	spec := workload.CurriculumSpec{StartingPercent: 0.04, Alpha: 2, StepSize: 5000}
	fmt.Println("Exponential pacing function g(i) (fraction of dataset visible):")
	for _, it := range []int64{0, 5000, 15000, 25000, 35000} {
		fmt.Printf("  iteration %6d: %5.1f%%\n", it, 100*spec.VisibleFraction(it))
	}
	fmt.Println()

	r, err := experiments.Figure16(experiments.Options{Seed: 42, Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	r.Table().Render(os.Stdout)
	fmt.Println("\nLRU matching uniform caching here is the expected result:")
	fmt.Println("resampled items become reusable immediately, so recency works again.")
}
