// Sweep demonstrates building a custom parameter study on the public
// API: it sweeps the remote egress limit for one workload and prints
// how each cache system's average JCT responds — a custom-parameter
// version of the paper's Figure 14a.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/unit"
	"repro/internal/workload"
)

func main() {
	// A 32-GPU slice of the cluster with a contended trace.
	cfg := workload.DefaultTraceConfig(7, 120, 6*unit.Hour)
	jobs, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	table := report.NewTable("Remote egress sweep: avg JCT (minutes), 32 GPUs, 8 TB cache",
		"Egress", "SiloD", "Alluxio", "Quiver", "Alluxio/SiloD")
	for _, mbps := range []float64{100, 200, 400, 800, 1600, 3200} {
		cl := core.Cluster{GPUs: 32, Cache: unit.TiB(8), RemoteIO: unit.MBpsOf(mbps)}
		jct := map[policy.CacheSystem]float64{}
		for _, cs := range []policy.CacheSystem{policy.SiloD, policy.Alluxio, policy.Quiver} {
			pol, err := policy.Build(policy.FIFOKind, cs, 7)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run(sim.Config{
				Cluster: cl, Policy: pol, System: cs, Engine: sim.Fluid, Seed: 7,
			}, jobs)
			if err != nil {
				log.Fatal(err)
			}
			jct[cs] = res.AvgJCT().Minutes()
		}
		table.AddRow(
			unit.MBpsOf(mbps).String(),
			fmt.Sprintf("%.0f", jct[policy.SiloD]),
			fmt.Sprintf("%.0f", jct[policy.Alluxio]),
			fmt.Sprintf("%.0f", jct[policy.Quiver]),
			fmt.Sprintf("%.2fx", jct[policy.Alluxio]/jct[policy.SiloD]),
		)
	}
	table.Render(os.Stdout)
	fmt.Println("\nAs egress grows, caching stops mattering and the systems converge —")
	fmt.Println("the co-design pays exactly where remote IO is the bottleneck.")
}
