package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/unit"
	"repro/internal/workload"
)

// capture runs the CLI with stdout redirected to a temp file.
func capture(t *testing.T, args ...string) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(args, f); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	out, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestListCommand(t *testing.T) {
	out := capture(t, "-list")
	for _, id := range []string{"fig4", "fig12", "table6", "estimator", "static"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list missing %q:\n%s", id, out)
		}
	}
}

func TestStaticExperiment(t *testing.T) {
	out := capture(t, "-exp", "static")
	for _, want := range []string{"Table 1", "Figure 6", "ResNet-50"} {
		if !strings.Contains(out, want) {
			t.Errorf("static output missing %q", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	f, _ := os.CreateTemp(t.TempDir(), "out")
	defer f.Close()
	if err := run([]string{"-exp", "nope"}, f); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTraceMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	jobs, err := workload.Generate(workload.DefaultTraceConfig(5, 12, unit.Hour))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteTrace(f, jobs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := capture(t, "-trace", path, "-scheduler", "SJF", "-system", "SiloD",
		"-gpus", "16", "-cache", "4TB", "-remote", "400MB")
	for _, want := range []string{"SJF on SiloD", "avg JCT", "makespan"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace mode output missing %q:\n%s", want, out)
		}
	}
	// Bad flags are rejected.
	tmp, _ := os.CreateTemp(dir, "out")
	defer tmp.Close()
	if err := run([]string{"-trace", path, "-scheduler", "Bogus"}, tmp); err == nil {
		t.Error("bogus scheduler accepted")
	}
	if err := run([]string{"-trace", "/does/not/exist"}, tmp); err == nil {
		t.Error("missing trace accepted")
	}
}

func TestTraceModeCSVExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	jobs, err := workload.Generate(workload.DefaultTraceConfig(5, 8, unit.Hour))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := os.Create(path)
	if err := workload.WriteTrace(f, jobs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	csvDir := filepath.Join(dir, "csv")
	out := capture(t, "-trace", path, "-gpus", "16", "-cache", "4TB", "-remote", "400MB", "-csv", csvDir)
	if !strings.Contains(out, "timeline CSVs written") {
		t.Errorf("missing CSV confirmation:\n%s", out)
	}
	for _, name := range []string{"throughput", "remoteio", "fairness"} {
		data, err := os.ReadFile(filepath.Join(csvDir, name+".csv"))
		if err != nil {
			t.Fatalf("%s.csv: %v", name, err)
		}
		if !strings.HasPrefix(string(data), "series,time,value") {
			t.Errorf("%s.csv lacks header", name)
		}
	}
}

func TestQuickExperimentsRunEndToEnd(t *testing.T) {
	// Every cheap experiment must run through the CLI path; the heavy
	// ones are covered by the experiments package's own tests.
	for _, id := range []string{"fig4", "estimator"} {
		out := capture(t, "-exp", id, "-quick")
		if len(out) == 0 {
			t.Errorf("-exp %s produced no output", id)
		}
	}
}
