package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/unit"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// writeTestTrace generates a deterministic 5-job trace file.
func writeTestTrace(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "trace.jsonl")
	jobs, err := workload.Generate(workload.DefaultTraceConfig(5, 12, unit.Hour))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteTrace(f, jobs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

// snapshotShape reduces a snapshot to its schema — metric names, types,
// label keys, bucket counts — the part that must stay stable for
// downstream dashboards even as values change run to run.
func snapshotShape(s metrics.Snapshot) string {
	var b strings.Builder
	for _, m := range s.Metrics {
		keys := make([]string, 0, len(m.Labels))
		for k := range m.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "%s %s labels=[%s] buckets=%d\n",
			m.Name, m.Type, strings.Join(keys, ","), len(m.Buckets))
	}
	return b.String()
}

// TestTraceModeMetricsDump runs -metrics end to end and checks the JSON
// artifact: nonzero cache hit/miss byte counters, a remote-IO
// utilization gauge, a JCT histogram that agrees with the report table,
// a per-job event timeline, and a schema matching the golden file.
func TestTraceModeMetricsDump(t *testing.T) {
	dir := t.TempDir()
	trace := writeTestTrace(t, dir)
	outPath := filepath.Join(dir, "metrics.json")
	out := capture(t, "-trace", trace, "-scheduler", "SJF", "-system", "SiloD",
		"-gpus", "16", "-cache", "4TB", "-remote", "400MB", "-metrics", outPath)
	if !strings.Contains(out, "metrics snapshot written") {
		t.Fatalf("missing confirmation line:\n%s", out)
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var d metricsDump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}

	if d.Summary.Scheduler != "SJF" || d.Summary.System != "SiloD" || d.Summary.Jobs <= 0 {
		t.Errorf("summary = %+v, want SJF/SiloD with jobs > 0", d.Summary)
	}

	// The run must have exercised the cache both ways.
	hit := d.Snapshot.CounterValue("silod_sim_cache_hit_bytes_total", nil)
	miss := d.Snapshot.CounterValue("silod_sim_cache_miss_bytes_total", nil)
	if hit <= 0 || miss <= 0 {
		t.Errorf("cache hit/miss bytes = %v/%v, want both > 0", hit, miss)
	}

	// Remote-IO utilization is exported and sane.
	util, ok := d.Snapshot.Get("silod_sim_remoteio_utilization_ratio", nil)
	if !ok {
		t.Fatal("silod_sim_remoteio_utilization_ratio missing from snapshot")
	}
	if v := *util.Value; v < 0 || v > 1 {
		t.Errorf("utilization = %v, want in [0, 1]", v)
	}

	// The JCT histogram must agree with the report table's avg JCT.
	jct, ok := d.Snapshot.Get("silod_sim_jct_minutes", nil)
	if !ok {
		t.Fatal("silod_sim_jct_minutes missing from snapshot")
	}
	if jct.Count != int64(d.Summary.Jobs) {
		t.Errorf("jct count = %d, want %d", jct.Count, d.Summary.Jobs)
	}
	avg := jct.Sum / float64(jct.Count)
	if math.Abs(avg-d.Summary.AvgJCTMin) > 1e-6*math.Abs(avg)+1e-9 {
		t.Errorf("histogram avg %v != summary avg %v", avg, d.Summary.AvgJCTMin)
	}
	if want := fmt.Sprintf("%.1f min", avg); !strings.Contains(out, want) {
		t.Errorf("report table does not quote histogram avg %q:\n%s", want, out)
	}

	// Timeline carries one submit and one complete per job.
	kinds := map[metrics.EventKind]int{}
	for _, e := range d.Timeline {
		kinds[e.Kind]++
	}
	if kinds[metrics.EventSubmit] != d.Summary.Jobs || kinds[metrics.EventComplete] != d.Summary.Jobs {
		t.Errorf("timeline submit/complete = %d/%d, want %d each",
			kinds[metrics.EventSubmit], kinds[metrics.EventComplete], d.Summary.Jobs)
	}

	// Schema golden: names, types, label keys, bucket counts.
	got := snapshotShape(d.Snapshot)
	golden := filepath.Join("testdata", "metrics_shape.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("snapshot schema drifted from golden (run with -update if intended)\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestTraceModeWithoutMetricsFlagWritesNothing: the flag is opt-in.
func TestTraceModeWithoutMetricsFlagWritesNothing(t *testing.T) {
	dir := t.TempDir()
	trace := writeTestTrace(t, dir)
	out := capture(t, "-trace", trace, "-gpus", "16", "-cache", "4TB", "-remote", "400MB")
	if strings.Contains(out, "metrics snapshot") {
		t.Errorf("unexpected metrics output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "metrics.json")); !os.IsNotExist(err) {
		t.Errorf("metrics.json written without -metrics flag")
	}
}
