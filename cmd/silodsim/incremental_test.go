package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestFullResolveFlagByteIdentical is the CLI end of the incremental
// scheduling guarantee: -full-resolve (from-scratch solve every round)
// must print byte-identical experiment output to the default
// incremental fast path. fidelity96 runs both simulation engines, so
// the delta memo, warm-started bisections and rate memo are all on the
// line here.
func TestFullResolveFlagByteIdentical(t *testing.T) {
	full := capture(t, "-exp", "fidelity96", "-quick", "-seed", "7", "-parallel", "1", "-full-resolve")
	incr := capture(t, "-exp", "fidelity96", "-quick", "-seed", "7", "-parallel", "1")
	if full != incr {
		t.Errorf("-full-resolve output differs from incremental default:\n--- full resolve ---\n%s\n--- incremental ---\n%s", full, incr)
	}
	if full == "" {
		t.Error("empty experiment output")
	}
}

// TestFullResolveMetricsDumpByteIdentical extends the gate to trace
// mode: the -metrics JSON snapshot (per-job stats plus every timeline
// sample) must be byte-identical with and without -full-resolve, on
// both engines.
func TestFullResolveMetricsDumpByteIdentical(t *testing.T) {
	dir := t.TempDir()
	trace := writeTestTrace(t, dir)
	for _, engine := range []string{"fluid", "batch"} {
		t.Run(engine, func(t *testing.T) {
			var dumps [][]byte
			for _, extra := range [][]string{{"-full-resolve"}, nil} {
				out := filepath.Join(dir, engine+"-fr"+string(rune('a'+len(dumps)))+".json")
				args := append([]string{"-trace", trace, "-engine", engine, "-seed", "1234",
					"-scheduler", "SJF", "-system", "SiloD",
					"-gpus", "16", "-cache", "4TB", "-remote", "400MB", "-metrics", out}, extra...)
				capture(t, args...)
				data, err := os.ReadFile(out)
				if err != nil {
					t.Fatal(err)
				}
				dumps = append(dumps, data)
			}
			if !bytes.Equal(dumps[0], dumps[1]) {
				t.Errorf("-full-resolve metrics dump differs from incremental (%d vs %d bytes)",
					len(dumps[0]), len(dumps[1]))
			}
			if len(dumps[0]) == 0 {
				t.Error("metrics dump is empty")
			}
		})
	}
}
