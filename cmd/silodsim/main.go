// Command silodsim reproduces the paper's tables and figures, or runs a
// custom trace through the cluster simulator.
//
// Reproduce an experiment (see -list for the index):
//
//	silodsim -exp fig12 [-seed 42] [-jobs 1000] [-quick]
//
// Run a trace file produced by silodtrace:
//
//	silodsim -trace trace.jsonl -scheduler Gavel -system SiloD \
//	         -gpus 96 -cache 24TB -remote 1GB/s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/unit"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "silodsim:", err)
		os.Exit(1)
	}
}

// experimentRunner executes one experiment and prints its artifacts.
type experimentRunner struct {
	desc string
	run  func(o experiments.Options, w *os.File) error
}

// runners is the experiment index, keyed by the IDs in DESIGN.md.
var runners = map[string]experimentRunner{
	"static": {"Tables 1-2 and Figures 1, 3, 6 (catalog-derived)", func(o experiments.Options, w *os.File) error {
		fmt.Fprint(w, experiments.RenderStatic())
		return nil
	}},
	"fig2": {"Figure 2: 400-GPU remote IO demand timeline", func(o experiments.Options, w *os.File) error {
		r, err := experiments.Figure2(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Figure 2: remote IO demand (peak %.0f Gbps) ==\n", r.Peak)
		report.RenderSeries(w, r.Demand, 24)
		return nil
	}},
	"fig4": {"Figure 4: two-job max-min motivating example", func(o experiments.Options, w *os.File) error {
		r, err := experiments.Figure4(o)
		if err != nil {
			return err
		}
		r.Table().Render(w)
		return nil
	}},
	"table6": {"Table 6 + Figure 9: 8-V100 micro-benchmark with fidelity comparison", func(o experiments.Options, w *os.File) error {
		r, err := experiments.Table6(experiments.Table6Options{Options: o, WithTestbed: true})
		if err != nil {
			return err
		}
		r.Table().Render(w)
		fmt.Fprint(w, r.Figure9(12))
		return nil
	}},
	"fig10": {"Figures 10, 11, 8: 96-GPU FIFO cluster", func(o experiments.Options, w *os.File) error {
		r, err := experiments.Figure10(o)
		if err != nil {
			return err
		}
		r.Table().Render(w)
		r.CDFTable().Render(w)
		fmt.Fprint(w, r.Figure11Text(10))
		fmt.Fprint(w, r.Figure8Text())
		return nil
	}},
	"fig12": {"Figures 12, 13: 400-GPU, three policies x four cache systems", func(o experiments.Options, w *os.File) error {
		r, err := experiments.Figure12(o)
		if err != nil {
			return err
		}
		r.JCTTable().Render(w)
		r.MakespanTable().Render(w)
		r.FairnessTable().Render(w)
		return nil
	}},
	"fig14a": {"Figure 14a: remote bandwidth sweep", func(o experiments.Options, w *os.File) error {
		r, err := experiments.Figure14a(o)
		if err != nil {
			return err
		}
		r.Table().Render(w)
		return nil
	}},
	"fig14b": {"Figure 14b: GPU speed scaling", func(o experiments.Options, w *os.File) error {
		r, err := experiments.Figure14b(o)
		if err != nil {
			return err
		}
		r.Table().Render(w)
		return nil
	}},
	"fig15": {"Figure 15: dataset sharing sweep", func(o experiments.Options, w *os.File) error {
		r, err := experiments.Figure15(o)
		if err != nil {
			return err
		}
		r.Table().Render(w)
		return nil
	}},
	"fig16": {"Figure 16: curriculum learning, Uniform vs LRU", func(o experiments.Options, w *os.File) error {
		r, err := experiments.Figure16(o)
		if err != nil {
			return err
		}
		r.PacingTable.Render(w)
		r.Table().Render(w)
		return nil
	}},
	"ablation-noio": {"Ablation (§7.2): disable remote IO control", func(o experiments.Options, w *os.File) error {
		r, err := experiments.AblationNoIO(o)
		if err != nil {
			return err
		}
		r.Table().Render(w)
		return nil
	}},
	"ablation-design": {"Design ablation: disable individual co-design mechanisms", func(o experiments.Options, w *os.File) error {
		r, err := experiments.AblationDesignChoices(o)
		if err != nil {
			return err
		}
		r.Table().Render(w)
		return nil
	}},
	"ablation-prefetch": {"Extension: Hoard-style dataset prefetching", func(o experiments.Options, w *os.File) error {
		r, err := experiments.AblationPrefetch(o)
		if err != nil {
			return err
		}
		r.Table().Render(w)
		return nil
	}},
	"mixed-cluster": {"Mixed cluster (§6): partitioning regular vs curriculum jobs", func(o experiments.Options, w *os.File) error {
		r, err := experiments.MixedCluster(o)
		if err != nil {
			return err
		}
		r.Table().Render(w)
		return nil
	}},
	"fidelity96": {"96-GPU simulator fidelity: fluid vs block-level engines (§7.2)", func(o experiments.Options, w *os.File) error {
		r, err := experiments.Figure10Fidelity(o)
		if err != nil {
			return err
		}
		r.Table().Render(w)
		return nil
	}},
	"gavel-objectives": {"Gavel objectives beyond max-min (throughput, finish-time fairness)", func(o experiments.Options, w *os.File) error {
		r, err := experiments.GavelObjectives(o)
		if err != nil {
			return err
		}
		r.Table().Render(w)
		return nil
	}},
	"estimator": {"Estimator accuracy (§4): closed form vs block-level simulation", func(o experiments.Options, w *os.File) error {
		r, err := experiments.EstimatorAccuracy(o)
		if err != nil {
			return err
		}
		r.Table().Render(w)
		return nil
	}},
	"tenants": {"Multi-tenant chaos: SLO-tiered tenants under GPU+cache loss", func(o experiments.Options, w *os.File) error {
		r, err := experiments.MultiTenantChaos(o)
		if err != nil {
			return err
		}
		r.Table().Render(w)
		for _, eng := range []string{"fluid", "batch"} {
			fmt.Fprintf(w, "%s makespan: clean %.0f min, chaos %.0f min\n",
				eng, r.CleanMakespan[eng].Minutes(), r.FaultMakespan[eng].Minutes())
		}
		return nil
	}},
}

// silod:sim-root
func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("silodsim", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment ID to reproduce (see -list)")
	list := fs.Bool("list", false, "list experiment IDs")
	all := fs.Bool("all", false, "run every experiment")
	seed := fs.Int64("seed", 42, "random seed")
	jobsN := fs.Int("jobs", 0, "override trace size for cluster experiments")
	quick := fs.Bool("quick", false, "shrink cluster experiments for a fast pass")
	parallel := fs.Int("parallel", 0, "experiment-arm workers: 0 = GOMAXPROCS, 1 = sequential (debugging reference)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")

	trace := fs.String("trace", "", "run a JSONL trace file instead of an experiment")
	scheduler := fs.String("scheduler", "FIFO", "scheduling policy: FIFO | SJF | Gavel")
	system := fs.String("system", "SiloD", "cache system: SiloD | Alluxio | CoorDL | Quiver")
	gpus := fs.Int("gpus", 96, "cluster GPUs (trace mode)")
	cacheStr := fs.String("cache", "24TB", "cluster cache capacity (trace mode)")
	remoteStr := fs.String("remote", "1GB", "remote IO capacity in bytes/sec (trace mode), e.g. 1GB")
	engine := fs.String("engine", "fluid", "simulation engine: fluid | batch")
	fullResolve := fs.Bool("full-resolve", false, "disable incremental scheduling fast paths (reference mode; outputs are byte-identical either way)")
	csvDir := fs.String("csv", "", "write timeline series as CSV files into this directory (trace mode)")
	metricsOut := fs.String("metrics", "", "write a JSON metrics snapshot (counters, histograms, per-job events) to this file (trace mode)")
	faultsPath := fs.String("faults", "", "replay a deterministic fault schedule (JSON, see docs/fault-injection.md) during the run (trace mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		ids := make([]string, 0, len(runners))
		for id := range runners {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(w, "%-14s %s\n", id, runners[id].desc)
		}
		return nil
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "silodsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the heap profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "silodsim: memprofile:", err)
			}
		}()
	}
	o := experiments.Options{
		Seed: *seed, Jobs: *jobsN, Quick: *quick,
		Sequential: *parallel == 1, Workers: *parallel,
		FullResolve: *fullResolve,
	}
	if *trace != "" {
		return runTrace(w, *trace, *scheduler, *system, *engine, *gpus, *cacheStr, *remoteStr, *seed, *csvDir, *metricsOut, *faultsPath, *fullResolve)
	}
	if *faultsPath != "" {
		return fmt.Errorf("-faults requires -trace (fault schedules apply to trace runs)")
	}
	if *all {
		ids := make([]string, 0, len(runners))
		for id := range runners {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(w, "\n######## %s ########\n", id)
			if err := runners[id].run(o, w); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		return nil
	}
	r, ok := runners[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", *exp)
	}
	return r.run(o, w)
}

// runTrace simulates a trace file under one (scheduler, system) pair.
// silod:sim-root
func runTrace(w *os.File, path, scheduler, system, engine string, gpus int, cacheStr, remoteStr string, seed int64, csvDir, metricsOut, faultsPath string, fullResolve bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	jobs, err := workload.ReadTrace(f)
	if err != nil {
		return err
	}
	var sched *faults.Schedule
	if faultsPath != "" {
		data, err := os.ReadFile(faultsPath)
		if err != nil {
			return err
		}
		sched, err = faults.Parse(data)
		if err != nil {
			return fmt.Errorf("%s: %w", faultsPath, err)
		}
	}
	k, err := policy.ParseSchedulerKind(scheduler)
	if err != nil {
		return err
	}
	cs, err := policy.ParseCacheSystem(system)
	if err != nil {
		return err
	}
	cacheBytes, err := unit.ParseBytes(cacheStr)
	if err != nil {
		return err
	}
	remoteBW, err := unit.ParseBandwidth(remoteStr)
	if err != nil {
		return err
	}
	pol, err := policy.Build(k, cs, seed)
	if err != nil {
		return err
	}
	eng := sim.Fluid
	if engine == "batch" {
		eng = sim.Batch
	}
	var reg *metrics.Registry
	var tl *metrics.Timeline
	if metricsOut != "" {
		reg = metrics.NewRegistry("silodsim")
		tl = metrics.NewTimeline(0)
	}
	res, err := sim.Run(sim.Config{
		Cluster:     core.Cluster{GPUs: gpus, Cache: cacheBytes, RemoteIO: remoteBW},
		Policy:      pol,
		System:      cs,
		Engine:      eng,
		Seed:        seed,
		Faults:      sched,
		Metrics:     reg,
		Timeline:    tl,
		FullResolve: fullResolve,
	}, jobs)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("%s on %s (%d jobs, %s engine)", k, cs, len(jobs), eng),
		"Metric", "Value")
	t.AddRow("avg JCT", fmt.Sprintf("%.1f min", res.AvgJCT().Minutes()))
	t.AddRow("makespan", fmt.Sprintf("%.1f min", res.Makespan.Minutes()))
	t.AddRow("avg fairness", fmt.Sprintf("%.2f", res.AvgFairness()))
	t.AddRow("events", fmt.Sprintf("%d", res.Events))
	t.Render(w)
	if csvDir != "" {
		if err := writeTimelineCSVs(csvDir, res); err != nil {
			return err
		}
		fmt.Fprintf(w, "timeline CSVs written to %s\n", csvDir)
	}
	if metricsOut != "" {
		if err := writeMetricsDump(metricsOut, metricsDump{
			Summary: dumpSummary{
				Scheduler:   k.String(),
				System:      cs.String(),
				Engine:      eng.String(),
				Jobs:        len(res.Jobs),
				AvgJCTMin:   res.AvgJCT().Minutes(),
				MakespanMin: res.Makespan.Minutes(),
			},
			Snapshot: reg.Snapshot(),
			Timeline: tl.Events(),
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "metrics snapshot written to %s\n", metricsOut)
	}
	return nil
}

// metricsDump is the -metrics JSON artifact: a run summary, the full
// registry snapshot, and the per-job event timeline.
type metricsDump struct {
	Summary  dumpSummary      `json:"summary"`
	Snapshot metrics.Snapshot `json:"snapshot"`
	Timeline []metrics.Event  `json:"timeline"`
}

// dumpSummary identifies the run the snapshot came from.
type dumpSummary struct {
	Scheduler   string  `json:"scheduler"`
	System      string  `json:"system"`
	Engine      string  `json:"engine"`
	Jobs        int     `json:"jobs"`
	AvgJCTMin   float64 `json:"avg_jct_minutes"`
	MakespanMin float64 `json:"makespan_minutes"`
}

// writeMetricsDump writes the dump as indented JSON. Close errors on
// this write path are real data-loss signals, so the first of
// encode/close error wins.
func writeMetricsDump(path string, d metricsDump) (rerr error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && rerr == nil {
			rerr = cerr
		}
	}()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// writeTimelineCSVs dumps every timeline series of a run as CSV files,
// ready for external plotting.
func writeTimelineCSVs(dir string, res *sim.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	names := make([]string, 0, len(res.Timelines))
	for name := range res.Timelines {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		werr := report.WriteSeriesCSV(f, res.Timelines[name])
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}
