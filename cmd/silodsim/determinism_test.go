package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestDeterministicMetricsDump is the regression gate behind the
// wallclock/rngpurity lint rules: two runs of the same trace with the
// same seed must produce byte-identical -metrics artifacts, for both
// engines. Any wall-clock read, ambient RNG, or map-iteration leak in
// the simulation path shows up here as a diff.
func TestDeterministicMetricsDump(t *testing.T) {
	dir := t.TempDir()
	trace := writeTestTrace(t, dir)
	for _, engine := range []string{"fluid", "batch"} {
		t.Run(engine, func(t *testing.T) {
			var dumps [][]byte
			for i := 0; i < 2; i++ {
				out := filepath.Join(dir, engine+"-run"+string(rune('a'+i))+".json")
				capture(t, "-trace", trace, "-engine", engine, "-seed", "1234",
					"-scheduler", "SJF", "-system", "SiloD",
					"-gpus", "16", "-cache", "4TB", "-remote", "400MB", "-metrics", out)
				data, err := os.ReadFile(out)
				if err != nil {
					t.Fatal(err)
				}
				dumps = append(dumps, data)
			}
			if !bytes.Equal(dumps[0], dumps[1]) {
				t.Errorf("same seed produced different metrics dumps (%d vs %d bytes); simulation is not deterministic",
					len(dumps[0]), len(dumps[1]))
			}
			if len(dumps[0]) == 0 {
				t.Error("metrics dump is empty")
			}
		})
	}
}

// TestParallelFlagByteIdentical checks the CLI end of the worker-pool
// guarantee: -parallel=4 must print byte-identical experiment output to
// the -parallel=1 sequential reference. fidelity96 fans its arms over
// both simulation engines, so a scheduling-order leak in either engine
// or in the pool's result collection shows up here.
func TestParallelFlagByteIdentical(t *testing.T) {
	seq := capture(t, "-exp", "fidelity96", "-quick", "-seed", "7", "-parallel", "1")
	par := capture(t, "-exp", "fidelity96", "-quick", "-seed", "7", "-parallel", "4")
	if seq != par {
		t.Errorf("-parallel=4 output differs from -parallel=1:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if seq == "" {
		t.Error("empty experiment output")
	}
}

// TestDeterministicChaosDump extends the determinism gate to fault
// injection: replaying the same fault schedule with the same seed must
// also be byte-identical, for both engines. A wall-clock or ambient-RNG
// leak anywhere in the fault path (injector, preemption, rollback,
// cache invalidation) shows up here.
func TestDeterministicChaosDump(t *testing.T) {
	dir := t.TempDir()
	trace := writeTestTrace(t, dir)
	schedule := filepath.Join(dir, "faults.json")
	blob := []byte(`{
  "events": [
    {"at_seconds": 7200, "kind": "gpu_loss", "gpus": 4},
    {"at_seconds": 10800, "kind": "cache_loss", "cache_bytes": 1099511627776},
    {"at_seconds": 14400, "kind": "io_loss", "io_bytes_per_sec": 100000000},
    {"at_seconds": 36000, "kind": "gpu_restore", "gpus": 4},
    {"at_seconds": 36000, "kind": "cache_restore", "cache_bytes": 1099511627776},
    {"at_seconds": 36000, "kind": "io_restore", "io_bytes_per_sec": 100000000}
  ]
}
`)
	if err := os.WriteFile(schedule, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"fluid", "batch"} {
		t.Run(engine, func(t *testing.T) {
			var dumps [][]byte
			for i := 0; i < 2; i++ {
				out := filepath.Join(dir, engine+"-chaos"+string(rune('a'+i))+".json")
				capture(t, "-trace", trace, "-engine", engine, "-seed", "1234",
					"-scheduler", "SJF", "-system", "SiloD", "-faults", schedule,
					"-gpus", "16", "-cache", "4TB", "-remote", "400MB", "-metrics", out)
				data, err := os.ReadFile(out)
				if err != nil {
					t.Fatal(err)
				}
				dumps = append(dumps, data)
			}
			if !bytes.Equal(dumps[0], dumps[1]) {
				t.Errorf("same seed+schedule produced different metrics dumps (%d vs %d bytes); chaos replay is not deterministic",
					len(dumps[0]), len(dumps[1]))
			}
		})
	}
}
