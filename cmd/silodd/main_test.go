package main

import "testing"

// The daemon's serving loop blocks forever, so tests exercise the
// configuration path, which must reject bad flags before binding.
func TestFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-scheduler", "Bogus"},
		{"-system", "Bogus"},
		{"-cache", "notasize"},
		{"-remote", "alsonotasize"},
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
