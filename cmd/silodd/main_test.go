package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/unit"
)

// Bad flags must be rejected before any listener binds.
func TestFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-scheduler", "Bogus"},
		{"-system", "Bogus"},
		{"-cache", "notasize"},
		{"-remote", "alsonotasize"},
		{"-tenants", "nocolon"},
		{"-tenants", "acme:notaclass"},
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// testDaemon boots a daemon on loopback ephemeral ports in queued
// serving mode with a fast round loop.
func testDaemon(t *testing.T) *daemon {
	t.Helper()
	d, err := newDaemon(daemonConfig{
		Cluster:   core.Cluster{GPUs: 8, Cache: unit.GiB(100), RemoteIO: unit.MBpsOf(200)},
		Scheduler: policy.FIFOKind,
		System:    policy.SiloD,
		Seed:      1,
		DMAddr:    "127.0.0.1:0",
		SchedAddr: "127.0.0.1:0",
		Interval:  10 * time.Millisecond,
		Drain:     2 * time.Second,
		Queue:     admission.Config{Capacity: 32, HighWater: 8, StandardWater: 16},
		Batch:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func submitBody(t *testing.T, job string) []byte {
	t.Helper()
	body, err := json.Marshal(controlplane.SubmitJobRequest{
		JobID: job, Model: "ResNet-50", Dataset: "imagenet1k",
		DatasetSize: unit.GiB(10), NumGPUs: 1,
		IdealThroughput: unit.MBpsOf(100), TotalBytes: unit.GiB(20),
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestGracefulDrain is the shutdown regression test: submissions in
// flight when the drain starts either complete normally or get a clean
// 503 + Retry-After — never a torn connection — and the daemon's wait
// loop returns nil on SIGTERM.
func TestGracefulDrain(t *testing.T) {
	d := testDaemon(t)
	url := "http://" + d.schedLn.Addr().String()

	// The serving path works before the drain: queued then scheduled.
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(submitBody(t, "warm")))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pre-drain submit: HTTP %d, want 202", resp.StatusCode)
	}

	// Storm the daemon while SIGTERM lands mid-flight.
	sig := make(chan os.Signal, 1)
	waitErr := make(chan error, 1)
	go func() { waitErr <- d.wait(sig) }()
	var wg sync.WaitGroup
	var mu sync.Mutex
	codes := map[int]int{} // guarded by mu
	var torn []string      // guarded by mu
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				body := submitBody(t, fmt.Sprintf("drain-%d-%d", i, j))
				resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					// The listener closed before this connection was
					// accepted: not an in-flight request, so a refusal
					// is the clean outcome. Anything else is a tear.
					if !strings.Contains(err.Error(), "connection refused") &&
						!strings.Contains(err.Error(), "EOF") {
						mu.Lock()
						torn = append(torn, err.Error())
						mu.Unlock()
					}
					return
				}
				retryAfter := resp.Header.Get("Retry-After")
				if cerr := resp.Body.Close(); cerr != nil {
					mu.Lock()
					torn = append(torn, cerr.Error())
					mu.Unlock()
					return
				}
				mu.Lock()
				codes[resp.StatusCode]++
				mu.Unlock()
				if resp.StatusCode == http.StatusServiceUnavailable {
					if retryAfter == "" {
						t.Errorf("drain 503 without Retry-After")
					}
					return
				}
			}
		}(i)
	}
	time.Sleep(30 * time.Millisecond) // let the storm get in flight
	sig <- syscall.SIGTERM
	wg.Wait()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("wait after SIGTERM = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down within the drain deadline")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(torn) > 0 {
		t.Errorf("%d torn connections during drain, e.g. %s", len(torn), torn[0])
	}
	for code := range codes {
		if code != http.StatusAccepted && code != http.StatusServiceUnavailable {
			t.Errorf("drain produced HTTP %d (%d of them), want only 202/503", code, codes[code])
		}
	}
	if codes[http.StatusAccepted] == 0 {
		t.Error("storm never got a submission accepted before the drain")
	}

	// The daemon is actually down: new connections are refused.
	if _, err := http.Get(url + "/v1/jobs"); err == nil {
		t.Error("scheduler listener still accepting after shutdown")
	}
}

// TestListenerErrorPropagates: when a listener dies underneath the
// daemon, wait returns the error instead of hanging.
func TestListenerErrorPropagates(t *testing.T) {
	d := testDaemon(t)
	if err := d.schedLn.Close(); err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal)
	done := make(chan error, 1)
	go func() { done <- d.wait(sig) }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("wait returned nil after listener death")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wait did not notice the dead listener")
	}
}
