// Command silodd runs the SiloD control plane: the data-manager service
// (cache + remote IO enforcement, Table 3 APIs) and the scheduler
// service (joint compute/storage allocation) in one process.
//
//	silodd -gpus 96 -cache 24TB -remote 1GB -scheduler Gavel \
//	       -dm-addr :7070 -sched-addr :7071 -interval 10s \
//	       -tenants acme:critical,gamma:sheddable:gpus=3:egress=100MB
//
// Drive it with silodctl.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/datamgr"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/tenant"
	"repro/internal/unit"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "silodd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("silodd", flag.ContinueOnError)
	gpus := fs.Int("gpus", 96, "cluster GPUs")
	cacheStr := fs.String("cache", "24TB", "cluster cache capacity")
	remoteStr := fs.String("remote", "1GB", "remote IO capacity (bytes/sec)")
	scheduler := fs.String("scheduler", "FIFO", "scheduling policy: FIFO | SJF | Gavel")
	system := fs.String("system", "SiloD", "cache system: SiloD | Alluxio | CoorDL | Quiver")
	dmAddr := fs.String("dm-addr", ":7070", "data manager listen address")
	schedAddr := fs.String("sched-addr", ":7071", "scheduler listen address")
	interval := fs.Duration("interval", 0, "scheduling loop period (0 = on demand via POST /v1/schedule)")
	seed := fs.Int64("seed", 42, "seed for stochastic policy elements")
	tenantsSpec := fs.String("tenants", "",
		"tenant registry: comma-separated id:class[:gpus=N][:cache=SIZE][:egress=BW] entries, e.g. "+
			"acme:critical,gamma:sheddable:gpus=3:egress=100MB (empty = untenanted flat pool)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cacheBytes, err := unit.ParseBytes(*cacheStr)
	if err != nil {
		return err
	}
	remoteBW, err := unit.ParseBandwidth(*remoteStr)
	if err != nil {
		return err
	}
	k, err := policy.ParseSchedulerKind(*scheduler)
	if err != nil {
		return err
	}
	cs, err := policy.ParseCacheSystem(*system)
	if err != nil {
		return err
	}
	reg, err := parseTenants(*tenantsSpec)
	if err != nil {
		return err
	}
	pol, err := policy.BuildTenant(k, cs, *seed, reg)
	if err != nil {
		return err
	}

	mgr := datamgr.New(cacheBytes, remoteBW, *seed, nil)
	mgr.EnableMetrics(metrics.NewRegistry("datamgr"))
	dmSrv := controlplane.NewDataManagerServer(mgr)
	cluster := core.Cluster{GPUs: *gpus, Cache: cacheBytes, RemoteIO: remoteBW}
	sched, err := controlplane.NewSchedulerServer(cluster, pol, controlplane.LocalDataPlane{Mgr: mgr}, time.Now)
	if err != nil {
		return err
	}
	if reg != nil {
		sched.ConfigureTenants(reg)
	}

	errCh := make(chan error, 2)
	go func() {
		log.Printf("silodd: data manager listening on %s", *dmAddr)
		errCh <- http.ListenAndServe(*dmAddr, dmSrv)
	}()
	go func() {
		log.Printf("silodd: scheduler (%s on %s) listening on %s", k, cs, *schedAddr)
		errCh <- http.ListenAndServe(*schedAddr, sched)
	}()
	if *interval > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go sched.RunLoop(*interval, stop, func(err error) {
			log.Printf("silodd: scheduling round failed: %v", err)
		})
	}
	return <-errCh
}

// parseTenants builds a tenant registry from the -tenants flag. Each
// comma-separated entry is id:class followed by optional quota parts
// (gpus=N, cache=SIZE, egress=BW). An empty spec returns nil: the
// untenanted flat pool.
func parseTenants(spec string) (*tenant.Registry, error) {
	if spec == "" {
		return nil, nil
	}
	reg := tenant.NewRegistry()
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("-tenants entry %q: want id:class[:quota...]", entry)
		}
		class, err := tenant.ParseSLO(parts[1])
		if err != nil {
			return nil, fmt.Errorf("-tenants entry %q: %w", entry, err)
		}
		t := tenant.Tenant{ID: parts[0], Class: class}
		for _, q := range parts[2:] {
			key, val, ok := strings.Cut(q, "=")
			if !ok {
				return nil, fmt.Errorf("-tenants entry %q: quota part %q is not key=value", entry, q)
			}
			switch key {
			case "gpus":
				if _, err := fmt.Sscanf(val, "%d", &t.Quota.GPUs); err != nil {
					return nil, fmt.Errorf("-tenants entry %q: gpus %q: %w", entry, val, err)
				}
			case "cache":
				if t.Quota.Cache, err = unit.ParseBytes(val); err != nil {
					return nil, fmt.Errorf("-tenants entry %q: cache %q: %w", entry, val, err)
				}
			case "egress":
				if t.Quota.Egress, err = unit.ParseBandwidth(val); err != nil {
					return nil, fmt.Errorf("-tenants entry %q: egress %q: %w", entry, val, err)
				}
			default:
				return nil, fmt.Errorf("-tenants entry %q: unknown quota %q (want gpus, cache or egress)", entry, key)
			}
		}
		if err := reg.Register(t); err != nil {
			return nil, fmt.Errorf("-tenants: %w", err)
		}
	}
	return reg, nil
}
