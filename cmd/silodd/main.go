// Command silodd runs the SiloD control plane: the data-manager service
// (cache + remote IO enforcement, Table 3 APIs) and the scheduler
// service (joint compute/storage allocation) in one process.
//
//	silodd -gpus 96 -cache 24TB -remote 1GB -scheduler Gavel \
//	       -dm-addr :7070 -sched-addr :7071 -interval 10s
//
// Drive it with silodctl.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/datamgr"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/unit"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "silodd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("silodd", flag.ContinueOnError)
	gpus := fs.Int("gpus", 96, "cluster GPUs")
	cacheStr := fs.String("cache", "24TB", "cluster cache capacity")
	remoteStr := fs.String("remote", "1GB", "remote IO capacity (bytes/sec)")
	scheduler := fs.String("scheduler", "FIFO", "scheduling policy: FIFO | SJF | Gavel")
	system := fs.String("system", "SiloD", "cache system: SiloD | Alluxio | CoorDL | Quiver")
	dmAddr := fs.String("dm-addr", ":7070", "data manager listen address")
	schedAddr := fs.String("sched-addr", ":7071", "scheduler listen address")
	interval := fs.Duration("interval", 0, "scheduling loop period (0 = on demand via POST /v1/schedule)")
	seed := fs.Int64("seed", 42, "seed for stochastic policy elements")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cacheBytes, err := unit.ParseBytes(*cacheStr)
	if err != nil {
		return err
	}
	remoteBW, err := unit.ParseBandwidth(*remoteStr)
	if err != nil {
		return err
	}
	k, err := policy.ParseSchedulerKind(*scheduler)
	if err != nil {
		return err
	}
	cs, err := policy.ParseCacheSystem(*system)
	if err != nil {
		return err
	}
	pol, err := policy.Build(k, cs, *seed)
	if err != nil {
		return err
	}

	mgr := datamgr.New(cacheBytes, remoteBW, *seed, nil)
	mgr.EnableMetrics(metrics.NewRegistry("datamgr"))
	dmSrv := controlplane.NewDataManagerServer(mgr)
	cluster := core.Cluster{GPUs: *gpus, Cache: cacheBytes, RemoteIO: remoteBW}
	sched, err := controlplane.NewSchedulerServer(cluster, pol, controlplane.LocalDataPlane{Mgr: mgr}, time.Now)
	if err != nil {
		return err
	}

	errCh := make(chan error, 2)
	go func() {
		log.Printf("silodd: data manager listening on %s", *dmAddr)
		errCh <- http.ListenAndServe(*dmAddr, dmSrv)
	}()
	go func() {
		log.Printf("silodd: scheduler (%s on %s) listening on %s", k, cs, *schedAddr)
		errCh <- http.ListenAndServe(*schedAddr, sched)
	}()
	if *interval > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go sched.RunLoop(*interval, stop, func(err error) {
			log.Printf("silodd: scheduling round failed: %v", err)
		})
	}
	return <-errCh
}
