// Command silodd runs the SiloD control plane: the data-manager service
// (cache + remote IO enforcement, Table 3 APIs) and the scheduler
// service (joint compute/storage allocation) in one process.
//
//	silodd -gpus 96 -cache 24TB -remote 1GB -scheduler Gavel \
//	       -dm-addr :7070 -sched-addr :7071 -interval 10s \
//	       -queue 256 -batch 32 \
//	       -tenants acme:critical,gamma:sheddable:gpus=3:egress=100MB
//
// With -queue N the scheduler runs in online serving mode: submissions
// land in a bounded, SLO-classed admission queue and the round loop
// drains them in batches; overload sheds low tiers with 503 +
// Retry-After instead of wedging the scheduler. SIGTERM drains
// gracefully — new submissions get a clean 503 while in-flight
// requests finish, bounded by -drain.
//
// Drive it with silodctl; load it with silodload.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/datamgr"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/tenant"
	"repro/internal/unit"
)

// Per-request server timeouts: a stalled or malicious client must not
// pin a connection (and its handler goroutine) forever.
const (
	readHeaderTimeout = 5 * time.Second
	readTimeout       = 30 * time.Second
	writeTimeout      = 30 * time.Second
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "silodd:", err)
		os.Exit(1)
	}
}

// daemonConfig is everything run parses out of the flags.
type daemonConfig struct {
	Cluster   core.Cluster
	Scheduler policy.SchedulerKind
	System    policy.CacheSystem
	Seed      int64
	DMAddr    string
	SchedAddr string
	Interval  time.Duration
	Drain     time.Duration
	Queue     admission.Config // Capacity 0 = synchronous submits
	Batch     int
	Tenants   *tenant.Registry
}

// daemon is the running process: two HTTP listeners and (in serving
// mode) the single scheduler round-loop goroutine.
type daemon struct {
	cfg      daemonConfig
	sched    *controlplane.SchedulerServer
	dmSrv    *http.Server
	schedSrv *http.Server
	dmLn     net.Listener
	schedLn  net.Listener
	errc     chan error    // listener exit errors
	stop     chan struct{} // closes to stop the round loop
	loopDone chan struct{} // closes when the round loop exits
}

func run(args []string) error {
	fs := flag.NewFlagSet("silodd", flag.ContinueOnError)
	gpus := fs.Int("gpus", 96, "cluster GPUs")
	cacheStr := fs.String("cache", "24TB", "cluster cache capacity")
	remoteStr := fs.String("remote", "1GB", "remote IO capacity (bytes/sec)")
	scheduler := fs.String("scheduler", "FIFO", "scheduling policy: FIFO | SJF | Gavel")
	system := fs.String("system", "SiloD", "cache system: SiloD | Alluxio | CoorDL | Quiver")
	dmAddr := fs.String("dm-addr", ":7070", "data manager listen address")
	schedAddr := fs.String("sched-addr", ":7071", "scheduler listen address")
	interval := fs.Duration("interval", 0, "scheduling loop period (0 = on demand via POST /v1/schedule; forced to 1s in queue mode)")
	drain := fs.Duration("drain", 5*time.Second, "graceful shutdown deadline for in-flight requests")
	queueCap := fs.Int("queue", 0, "admission queue capacity (0 = synchronous submits)")
	highWater := fs.Int("high-water", 0, "queue depth where the sheddable tier sheds (0 = capacity/4)")
	stdWater := fs.Int("std-water", 0, "queue depth where the standard tier sheds (0 = capacity/2)")
	batch := fs.Int("batch", 0, "queued submissions drained per round (0 = all)")
	seed := fs.Int64("seed", 42, "seed for stochastic policy elements")
	tenantsSpec := fs.String("tenants", "",
		"tenant registry: comma-separated id:class[:gpus=N][:cache=SIZE][:egress=BW] entries, e.g. "+
			"acme:critical,gamma:sheddable:gpus=3:egress=100MB (empty = untenanted flat pool)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cacheBytes, err := unit.ParseBytes(*cacheStr)
	if err != nil {
		return err
	}
	remoteBW, err := unit.ParseBandwidth(*remoteStr)
	if err != nil {
		return err
	}
	k, err := policy.ParseSchedulerKind(*scheduler)
	if err != nil {
		return err
	}
	cs, err := policy.ParseCacheSystem(*system)
	if err != nil {
		return err
	}
	reg, err := parseTenants(*tenantsSpec)
	if err != nil {
		return err
	}
	cfg := daemonConfig{
		Cluster:   core.Cluster{GPUs: *gpus, Cache: cacheBytes, RemoteIO: remoteBW},
		Scheduler: k,
		System:    cs,
		Seed:      *seed,
		DMAddr:    *dmAddr,
		SchedAddr: *schedAddr,
		Interval:  *interval,
		Drain:     *drain,
		Batch:     *batch,
		Tenants:   reg,
	}
	if *queueCap > 0 {
		hw, sw := *highWater, *stdWater
		if hw <= 0 {
			hw = *queueCap / 4
		}
		if sw <= 0 {
			sw = *queueCap / 2
		}
		cfg.Queue = admission.Config{Capacity: *queueCap, HighWater: hw, StandardWater: sw}
	}

	d, err := newDaemon(cfg)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)
	return d.wait(sig)
}

// newDaemon builds the control plane, binds both listeners, and starts
// serving. Callers own shutdown (via wait or shutdown).
func newDaemon(cfg daemonConfig) (*daemon, error) {
	pol, err := policy.BuildTenant(cfg.Scheduler, cfg.System, cfg.Seed, cfg.Tenants)
	if err != nil {
		return nil, err
	}
	mgr := datamgr.New(cfg.Cluster.Cache, cfg.Cluster.RemoteIO, cfg.Seed, nil)
	mgr.EnableMetrics(metrics.NewRegistry("datamgr"))
	dmSrv := controlplane.NewDataManagerServer(mgr)
	sched, err := controlplane.NewSchedulerServer(cfg.Cluster, pol, controlplane.LocalDataPlane{Mgr: mgr}, time.Now)
	if err != nil {
		return nil, err
	}
	if cfg.Tenants != nil {
		sched.ConfigureTenants(cfg.Tenants)
	}
	if cfg.Queue.Capacity > 0 {
		q, err := admission.New(cfg.Queue, sched.Registry(), simrng.New(cfg.Seed))
		if err != nil {
			return nil, err
		}
		sched.ConfigureAdmission(q)
		// Queued submissions only make progress through rounds.
		if cfg.Interval <= 0 {
			cfg.Interval = time.Second
		}
	}

	dmLn, err := net.Listen("tcp", cfg.DMAddr)
	if err != nil {
		return nil, err
	}
	schedLn, err := net.Listen("tcp", cfg.SchedAddr)
	if err != nil {
		if cerr := dmLn.Close(); cerr != nil {
			log.Printf("silodd: closing data-manager listener: %v", cerr)
		}
		return nil, err
	}
	d := &daemon{
		cfg:      cfg,
		sched:    sched,
		dmSrv:    newServer(dmSrv),
		schedSrv: newServer(sched),
		dmLn:     dmLn,
		schedLn:  schedLn,
		errc:     make(chan error, 2),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	log.Printf("silodd: data manager listening on %s", dmLn.Addr())
	log.Printf("silodd: scheduler (%s on %s) listening on %s", cfg.Scheduler, cfg.System, schedLn.Addr())
	go serveListener(d.dmSrv, dmLn, d.errc)
	go serveListener(d.schedSrv, schedLn, d.errc)
	go serveRounds(sched, controlplane.ServeConfig{
		Interval: cfg.Interval, Batch: cfg.Batch, RoundDeadline: cfg.Interval,
	}, cfg.Interval, d.stop, d.loopDone)
	return d, nil
}

// newServer wraps a handler with the per-request timeouts.
func newServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
	}
}

// serveListener runs one HTTP server until it is shut down; the exit
// error (http.ErrServerClosed on a clean shutdown) lands in errc.
func serveListener(srv *http.Server, ln net.Listener, errc chan<- error) {
	errc <- srv.Serve(ln)
}

// serveRounds runs the scheduler's round loop until stop closes, then
// closes done. With no interval (on-demand mode) it only waits for
// stop, so shutdown has one code path either way.
func serveRounds(s *controlplane.SchedulerServer, cfg controlplane.ServeConfig,
	interval time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	if interval <= 0 {
		<-stop
		return
	}
	s.Serve(cfg, stop, func(err error) {
		log.Printf("silodd: scheduling round failed: %v", err)
	})
}

// wait blocks until a listener dies (the error is returned) or a
// shutdown signal arrives (the daemon drains gracefully and wait
// returns nil).
func (d *daemon) wait(sig <-chan os.Signal) error {
	select {
	case err := <-d.errc:
		d.shutdown()
		return err
	case s := <-sig:
		log.Printf("silodd: %v: draining (deadline %v)", s, d.cfg.Drain)
		d.shutdown()
		return nil
	}
}

// shutdown drains the daemon: flip the scheduler to draining (new
// submissions get a clean 503 + Retry-After), stop the round loop, and
// gracefully shut both HTTP servers down so in-flight requests finish
// within the drain deadline. Requests still open past the deadline are
// cut off.
func (d *daemon) shutdown() {
	d.sched.SetDraining(true)
	close(d.stop)
	<-d.loopDone
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.Drain)
	defer cancel()
	for _, srv := range []*http.Server{d.schedSrv, d.dmSrv} {
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("silodd: drain deadline passed, closing: %v", err)
			if cerr := srv.Close(); cerr != nil {
				log.Printf("silodd: close: %v", cerr)
			}
		}
	}
}

// parseTenants builds a tenant registry from the -tenants flag. Each
// comma-separated entry is id:class followed by optional quota parts
// (gpus=N, cache=SIZE, egress=BW). An empty spec returns nil: the
// untenanted flat pool.
func parseTenants(spec string) (*tenant.Registry, error) {
	if spec == "" {
		return nil, nil
	}
	reg := tenant.NewRegistry()
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("-tenants entry %q: want id:class[:quota...]", entry)
		}
		class, err := tenant.ParseSLO(parts[1])
		if err != nil {
			return nil, fmt.Errorf("-tenants entry %q: %w", entry, err)
		}
		t := tenant.Tenant{ID: parts[0], Class: class}
		for _, q := range parts[2:] {
			key, val, ok := strings.Cut(q, "=")
			if !ok {
				return nil, fmt.Errorf("-tenants entry %q: quota part %q is not key=value", entry, q)
			}
			switch key {
			case "gpus":
				if _, err := fmt.Sscanf(val, "%d", &t.Quota.GPUs); err != nil {
					return nil, fmt.Errorf("-tenants entry %q: gpus %q: %w", entry, val, err)
				}
			case "cache":
				if t.Quota.Cache, err = unit.ParseBytes(val); err != nil {
					return nil, fmt.Errorf("-tenants entry %q: cache %q: %w", entry, val, err)
				}
			case "egress":
				if t.Quota.Egress, err = unit.ParseBandwidth(val); err != nil {
					return nil, fmt.Errorf("-tenants entry %q: egress %q: %w", entry, val, err)
				}
			default:
				return nil, fmt.Errorf("-tenants entry %q: unknown quota %q (want gpus, cache or egress)", entry, key)
			}
		}
		if err := reg.Register(t); err != nil {
			return nil, fmt.Errorf("-tenants: %w", err)
		}
	}
	return reg, nil
}
