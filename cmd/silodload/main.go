// Command silodload replays a seeded, bursty submission storm against
// a scheduler's online serving mode and reports what survived: the
// sustained admission rate, shed fractions per SLO tier, and submit /
// round latency quantiles, written as JSON for the benchmark suite.
//
//	silodload -seed 42 -jobs 400 -mean-iat 5ms -cv 2 -out BENCH_pr9.json
//
// With no -addr the generator self-hosts: it boots an in-process
// scheduler (FIFO on SiloD, queued-submission mode, bounded admission
// queue) on a loopback listener and drives rounds itself, so one
// binary measures the whole drain-shed-recover loop. Point -addr at a
// running silodd scheduler to load an external deployment instead
// (round latencies are then unavailable and reported as zero).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/datamgr"
	"repro/internal/loadgen"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/tenant"
	"repro/internal/unit"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "silodload:", err)
		os.Exit(1)
	}
}

// tierReport is one SLO tier's aggregate plus its derived shed
// fraction, so the JSON is self-contained.
type tierReport struct {
	loadgen.TierStats
	ShedFraction float64 `json:"shed_fraction"`
}

// benchReport is the JSON artifact silodload emits (BENCH_pr9.json in
// the benchmark suite).
type benchReport struct {
	Spec            loadgen.Spec          `json:"spec"`
	WallSeconds     float64               `json:"wall_seconds"`
	OfferedPerSec   float64               `json:"offered_jobs_per_sec"`
	SustainedPerSec float64               `json:"sustained_jobs_per_sec"`
	Tiers           map[string]tierReport `json:"tiers"`
	ShedMonotone    bool                  `json:"shed_monotone"`
	SubmitP50Millis float64               `json:"submit_p50_ms"`
	SubmitP99Millis float64               `json:"submit_p99_ms"`
	SubmitMaxMillis float64               `json:"submit_max_ms"`
	Rounds          int                   `json:"rounds"`
	RoundErrors     int                   `json:"round_errors"`
	RoundP50Millis  float64               `json:"round_p50_ms"`
	RoundP99Millis  float64               `json:"round_p99_ms"`
	TransportErrors int                   `json:"transport_errors"`
	FinalQueueDepth int                   `json:"final_queue_depth"`
	SelfHosted      bool                  `json:"self_hosted"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("silodload", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "workload seed")
	jobs := fs.Int("jobs", 400, "number of submissions to replay")
	meanIAT := fs.Duration("mean-iat", 5*time.Millisecond, "mean interarrival time")
	cv := fs.Float64("cv", 2, "interarrival coefficient of variation (1 = Poisson)")
	datasets := fs.Int("datasets", 10, "distinct datasets (Zipf-shared)")
	minDS := fs.String("min-dataset", "1GB", "smallest dataset size")
	maxDS := fs.String("max-dataset", "20GB", "largest dataset size")
	maxGPUs := fs.Int("max-gpus", 2, "largest gang size")
	critW := fs.Float64("crit-weight", 1, "critical tier weight")
	stdW := fs.Float64("std-weight", 2, "standard tier weight")
	shedW := fs.Float64("shed-weight", 2, "sheddable tier weight")
	addr := fs.String("addr", "", "scheduler base URL (empty = self-host in process)")
	out := fs.String("out", "BENCH_pr9.json", "report path (empty = stdout only)")
	gpus := fs.Int("gpus", 8, "self-host: cluster GPUs")
	cacheStr := fs.String("cache", "100GB", "self-host: cluster cache")
	remoteStr := fs.String("remote", "200MB", "self-host: remote IO bandwidth")
	interval := fs.Duration("interval", 25*time.Millisecond, "self-host: round period")
	batch := fs.Int("batch", 8, "self-host: submissions drained per round")
	capacity := fs.Int("capacity", 64, "self-host: admission queue capacity")
	highWater := fs.Int("high-water", 12, "self-host: sheddable-tier watermark")
	stdWater := fs.Int("std-water", 24, "self-host: standard-tier watermark")
	drainWait := fs.Duration("drain-wait", 5*time.Second, "self-host: max wait for the backlog to drain")
	if err := fs.Parse(args); err != nil {
		return err
	}

	minBytes, err := unit.ParseBytes(*minDS)
	if err != nil {
		return err
	}
	maxBytes, err := unit.ParseBytes(*maxDS)
	if err != nil {
		return err
	}
	spec := loadgen.Spec{
		Seed: *seed, Jobs: *jobs, MeanIAT: *meanIAT, CV: *cv,
		Datasets: *datasets, MinDataset: minBytes, MaxDataset: maxBytes,
		MaxGPUs: *maxGPUs, CritWeight: *critW, StdWeight: *stdW, ShedWeight: *shedW,
	}
	plan, err := loadgen.Plan(spec)
	if err != nil {
		return err
	}

	rep := benchReport{Spec: spec, Tiers: map[string]tierReport{}}
	base := *addr
	var host *selfHost
	if base == "" {
		cacheBytes, err := unit.ParseBytes(*cacheStr)
		if err != nil {
			return err
		}
		remoteBW, err := unit.ParseBandwidth(*remoteStr)
		if err != nil {
			return err
		}
		host, err = startSelfHost(selfHostConfig{
			Cluster:  core.Cluster{GPUs: *gpus, Cache: cacheBytes, RemoteIO: remoteBW},
			Seed:     *seed,
			Interval: *interval,
			Batch:    *batch,
			Queue:    admission.Config{Capacity: *capacity, HighWater: *highWater, StandardWater: *stdWater},
		})
		if err != nil {
			return err
		}
		defer host.stop()
		base = host.url
		rep.SelfHosted = true
		log.Printf("silodload: self-hosted scheduler at %s (%d GPUs, round every %v, batch %d)",
			base, *gpus, *interval, *batch)
	}

	report, submitSecs, transportErrs := replay(base, plan)
	rep.WallSeconds = replayWall(plan, submitSecs)
	rep.TransportErrors = transportErrs

	if host != nil {
		host.awaitDrain(*drainWait)
		host.stop() // freeze round stats before reading them
		rep.Rounds, rep.RoundErrors = host.rec.counts()
		rounds := host.rec.durations()
		rep.RoundP50Millis = loadgen.Quantile(rounds, 0.5) * 1000
		rep.RoundP99Millis = loadgen.Quantile(rounds, 0.99) * 1000
		rep.FinalQueueDepth = host.queue.Depth()
	}

	total := report.Total()
	if rep.WallSeconds > 0 {
		rep.OfferedPerSec = float64(total.Offered) / rep.WallSeconds
		rep.SustainedPerSec = float64(total.Accepted) / rep.WallSeconds
	}
	for _, c := range tenant.Classes() {
		t := report.Tier(c)
		rep.Tiers[c.String()] = tierReport{TierStats: t, ShedFraction: t.ShedFraction()}
	}
	rep.ShedMonotone = report.ShedMonotone()
	rep.SubmitP50Millis = loadgen.Quantile(submitSecs, 0.5) * 1000
	rep.SubmitP99Millis = loadgen.Quantile(submitSecs, 0.99) * 1000
	rep.SubmitMaxMillis = loadgen.Quantile(submitSecs, 1) * 1000

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", blob)
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		log.Printf("silodload: wrote %s", *out)
	}
	return nil
}

// replay offers every planned arrival to the scheduler at its planned
// time (sleeping out the gaps, never ahead of plan) and classifies the
// responses. Submissions are issued synchronously from this one
// goroutine, so the generator is closed-loop: a slow scheduler delays
// subsequent offers instead of piling up unbounded in-flight requests.
func replay(base string, plan []loadgen.Arrival) (report loadgen.Report, submitSecs []float64, transportErrs int) {
	hc := &http.Client{Timeout: 10 * time.Second}
	start := time.Now()
	for _, a := range plan {
		if d := a.At - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		st := time.Now()
		status, err := postSubmit(hc, base, a)
		submitSecs = append(submitSecs, time.Since(st).Seconds())
		if err != nil {
			transportErrs++
			report.Record(a.SLO, loadgen.StatusError)
			continue
		}
		switch {
		case status == http.StatusAccepted || status == http.StatusOK:
			report.Record(a.SLO, loadgen.StatusAccepted)
		case status == http.StatusServiceUnavailable:
			report.Record(a.SLO, loadgen.StatusShed)
		case status == http.StatusBadRequest || status == http.StatusTooManyRequests:
			report.Record(a.SLO, loadgen.StatusRejected)
		default:
			report.Record(a.SLO, loadgen.StatusError)
		}
	}
	return report, submitSecs, transportErrs
}

// replayWall is the storm's wall-clock span: the last planned arrival
// offset plus that submission's service time — what offered/sustained
// rates divide by.
func replayWall(plan []loadgen.Arrival, submitSecs []float64) float64 {
	if len(plan) == 0 {
		return 0
	}
	wall := plan[len(plan)-1].At.Seconds()
	if n := len(submitSecs); n > 0 {
		wall += submitSecs[n-1]
	}
	return wall
}

// postSubmit maps one arrival onto POST /v1/jobs and returns the
// status code. The body is read and closed fully so the transport
// reuses connections across the storm.
func postSubmit(hc *http.Client, base string, a loadgen.Arrival) (int, error) {
	body, err := json.Marshal(controlplane.SubmitJobRequest{
		JobID: a.JobID, Model: "ResNet-50",
		Dataset: a.Dataset, DatasetSize: a.DatasetSize,
		NumGPUs: a.NumGPUs, IdealThroughput: a.IdealThroughput,
		TotalBytes: a.TotalBytes, Tenant: a.Tenant,
	})
	if err != nil {
		return 0, err
	}
	resp, err := hc.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return resp.StatusCode, resp.Body.Close()
	}
	if err := resp.Body.Close(); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

// roundRecorder collects per-round wall durations from the self-host
// round loop.
type roundRecorder struct {
	mu    sync.Mutex
	secs  []float64 // guarded by mu
	fails int       // guarded by mu
}

func (r *roundRecorder) add(sec float64, failed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.secs = append(r.secs, sec)
	if failed {
		r.fails++
	}
}

func (r *roundRecorder) counts() (rounds, fails int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.secs), r.fails
}

func (r *roundRecorder) durations() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, len(r.secs))
	copy(out, r.secs)
	return out
}

type selfHostConfig struct {
	Cluster  core.Cluster
	Seed     int64
	Interval time.Duration
	Batch    int
	Queue    admission.Config
}

// selfHost is an in-process scheduler stack: one HTTP listener, one
// round-loop goroutine, a bounded admission queue.
type selfHost struct {
	url      string
	sched    *controlplane.SchedulerServer
	queue    *admission.Queue
	srv      *http.Server
	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
	errCh    chan error
	rec      *roundRecorder
}

// startSelfHost boots the in-process stack on a loopback listener.
func startSelfHost(cfg selfHostConfig) (*selfHost, error) {
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, cfg.Seed)
	if err != nil {
		return nil, err
	}
	mgr := datamgr.New(cfg.Cluster.Cache, cfg.Cluster.RemoteIO, cfg.Seed, nil)
	sched, err := controlplane.NewSchedulerServer(cfg.Cluster, pol, controlplane.LocalDataPlane{Mgr: mgr}, time.Now)
	if err != nil {
		return nil, err
	}
	reg := tenant.NewRegistry()
	for _, tn := range loadgen.Tenants() {
		if err := reg.Register(tn); err != nil {
			return nil, err
		}
	}
	sched.ConfigureTenants(reg)
	q, err := admission.New(cfg.Queue, sched.Registry(), simrng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	sched.ConfigureAdmission(q)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h := &selfHost{
		url:   "http://" + ln.Addr().String(),
		sched: sched,
		queue: q,
		srv: &http.Server{
			Handler:           sched,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      10 * time.Second,
		},
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
		errCh:  make(chan error, 1),
		rec:    &roundRecorder{},
	}
	go serveListener(h.srv, ln, h.errCh)
	go roundLoop(sched, controlplane.ServeConfig{Batch: cfg.Batch, RoundDeadline: cfg.Interval},
		cfg.Interval, h.stopCh, h.doneCh, h.rec)
	return h, nil
}

// serveListener runs the HTTP server until stop() closes it; the exit
// error lands in errc for anyone who cares.
func serveListener(srv *http.Server, ln net.Listener, errc chan<- error) {
	errc <- srv.Serve(ln)
}

// roundLoop is the self-host scheduler goroutine: one RunRound per
// tick, timed, until stop closes.
func roundLoop(s *controlplane.SchedulerServer, cfg controlplane.ServeConfig,
	interval time.Duration, stop <-chan struct{}, done chan<- struct{}, rec *roundRecorder) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			st := time.Now()
			err := s.RunRound(context.Background(), cfg)
			rec.add(time.Since(st).Seconds(), err != nil)
		}
	}
}

// awaitDrain polls until the admission backlog is empty or the
// deadline passes, so the report reflects a fully-drained run when the
// scheduler can keep up.
func (h *selfHost) awaitDrain(max time.Duration) {
	deadline := time.Now().Add(max)
	for h.queue.Depth() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}

// stop tears the stack down: the round loop first, then the listener.
// Idempotent — run() calls it eagerly to freeze round stats before
// reporting, and the deferred call mops up on error paths.
func (h *selfHost) stop() {
	h.stopOnce.Do(func() {
		close(h.stopCh)
		<-h.doneCh
		if err := h.srv.Close(); err != nil {
			log.Printf("silodload: closing listener: %v", err)
		}
		<-h.errCh
	})
}
