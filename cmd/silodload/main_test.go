package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSelfHostSmoke replays a small storm against the self-hosted
// stack and validates the emitted report's shape and accounting.
func TestSelfHostSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	args := []string{
		"-seed", "7", "-jobs", "150", "-mean-iat", "2ms", "-cv", "2",
		"-datasets", "5", "-min-dataset", "1GB", "-max-dataset", "4GB",
		"-interval", "10ms", "-batch", "4",
		"-capacity", "32", "-high-water", "6", "-std-water", "12",
		"-out", out,
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !rep.SelfHosted {
		t.Error("self-hosted run not flagged")
	}
	total := 0
	for _, tier := range []string{"critical", "standard", "sheddable"} {
		ts, ok := rep.Tiers[tier]
		if !ok {
			t.Fatalf("report has no %q tier", tier)
		}
		total += ts.Offered
	}
	if total != 150 {
		t.Errorf("tiers account for %d offered submissions, want 150", total)
	}
	if rep.Tiers["critical"].Accepted == 0 {
		t.Error("no critical submission was accepted")
	}
	if rep.TransportErrors != 0 {
		t.Errorf("%d transport errors against a local listener", rep.TransportErrors)
	}
	if rep.WallSeconds <= 0 || rep.OfferedPerSec <= 0 || rep.SustainedPerSec <= 0 {
		t.Errorf("degenerate rates: wall %v offered/s %v sustained/s %v",
			rep.WallSeconds, rep.OfferedPerSec, rep.SustainedPerSec)
	}
	if rep.Rounds == 0 {
		t.Error("round loop never ran")
	}
	if rep.RoundErrors != 0 {
		t.Errorf("%d scheduling rounds failed", rep.RoundErrors)
	}
	if rep.SubmitP99Millis < rep.SubmitP50Millis {
		t.Errorf("p99 %vms below p50 %vms", rep.SubmitP99Millis, rep.SubmitP50Millis)
	}
	if rep.FinalQueueDepth != 0 {
		t.Errorf("backlog not drained: depth %d", rep.FinalQueueDepth)
	}
}

// Bad flags must fail before any listener binds.
func TestFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-jobs", "0"},
		{"-cv", "0"},
		{"-min-dataset", "notasize"},
		{"-max-dataset", "notasize"},
		{"-cache", "notasize"},
		{"-remote", "notasize"},
		{"-max-gpus", "0"},
	}
	for _, args := range bad {
		if err := run(append(args, "-out", "")); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
