package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/hollow"
)

func runHollow(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

// TestSameSeedDigestIdentical is the CLI end of the hollow identity
// gate: two same-seed runs must record the same push digest and job
// accounting (latencies are host noise and excluded).
func TestSameSeedDigestIdentical(t *testing.T) {
	dir := t.TempDir()
	var results [2]hollow.Result
	for i := range results {
		out := filepath.Join(dir, "run"+string(rune('a'+i))+".json")
		if _, err := runHollow(t, "-nodes", "64", "-jobs", "2000", "-rounds", "20",
			"-datasets", "32", "-seed", "9", "-out", out); err != nil {
			t.Fatal(err)
		}
		buf, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(buf, &results[i]); err != nil {
			t.Fatal(err)
		}
	}
	a, b := results[0], results[1]
	if a.Digest != b.Digest || a.Jobs != b.Jobs || a.Completed != b.Completed {
		t.Fatalf("same-seed runs differ: %+v vs %+v", a, b)
	}
	if a.Digest == "" {
		t.Fatal("empty push digest")
	}
}

// TestBaselineRegressionGate checks both sides of -baseline with
// fabricated baselines so the outcome doesn't ride on host noise: an
// hour-long p50 baseline always passes, a 1ns one always trips the 20%
// gate.
func TestBaselineRegressionGate(t *testing.T) {
	dir := t.TempDir()
	writeBaseline := func(name string, p50 time.Duration) string {
		t.Helper()
		buf, err := json.Marshal(hollow.Result{RoundLatency: hollow.Percentiles{P50: p50}})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	slow := writeBaseline("slow.json", time.Hour)
	if _, err := runHollow(t, "-nodes", "64", "-jobs", "500", "-rounds", "10",
		"-datasets", "16", "-seed", "9", "-baseline", slow); err != nil {
		t.Fatalf("hour-long baseline should pass: %v", err)
	}
	tiny := writeBaseline("tiny.json", time.Nanosecond)
	if _, err := runHollow(t, "-nodes", "64", "-jobs", "500", "-rounds", "10",
		"-datasets", "16", "-seed", "9", "-baseline", tiny); err == nil {
		t.Fatal("1ns baseline should trip the 20% regression gate")
	}
}

// TestBadFlags rejects unparsable shapes.
func TestBadFlags(t *testing.T) {
	if _, err := runHollow(t, "-scheduler", "nope"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := runHollow(t, "-cache", "banana"); err == nil {
		t.Fatal("unparsable cache size accepted")
	}
	if _, err := runHollow(t, "-rounds", "0"); err == nil {
		t.Fatal("zero rounds accepted")
	}
}
