// Command silodhollow drives the kubemark-style hollow-node load
// harness: a real SchedulerServer under thousands of synthetic
// heartbeating nodes and a synthetic job trace, with allocation pushes
// landing in a digesting sink instead of a data plane. It reports the
// control plane's round-latency percentiles and rounds/sec.
//
//	silodhollow -nodes 10000 -jobs 1000000 -rounds 200 -seed 42
//	silodhollow -nodes 1000 -jobs 50000 -out hollow.json
//	silodhollow -baseline hollow.json        # fail on >20% p50 regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/hollow"
	"repro/internal/policy"
	"repro/internal/unit"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "silodhollow:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("silodhollow", flag.ContinueOnError)
	nodes := fs.Int("nodes", 10_000, "hollow heartbeating nodes")
	gpus := fs.Int("gpus", 4, "GPUs per hollow node")
	cache := fs.String("cache", "512GiB", "cache per hollow node")
	jobs := fs.Int("jobs", 1_000_000, "total synthetic jobs over the run")
	datasets := fs.Int("datasets", 512, "distinct datasets")
	rounds := fs.Int("rounds", 200, "scheduling rounds to drive")
	jobRounds := fs.Int("job-rounds", 12, "progress reports before a job completes")
	scheduler := fs.String("scheduler", "FIFO", "scheduling policy (FIFO, SJF, Gavel)")
	system := fs.String("system", "SiloD", "cache system (SiloD, Alluxio, CoorDL, Quiver)")
	seed := fs.Int64("seed", 42, "trace seed")
	out := fs.String("out", "", "write the result as JSON to this file")
	baseline := fs.String("baseline", "", "compare against a prior -out file; fail on >20% p50 round-latency regression")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := policy.ParseSchedulerKind(*scheduler)
	if err != nil {
		return err
	}
	cs, err := policy.ParseCacheSystem(*system)
	if err != nil {
		return err
	}
	perNode, err := unit.ParseBytes(*cache)
	if err != nil {
		return fmt.Errorf("-cache: %w", err)
	}
	cfg := hollow.Config{
		Nodes:        *nodes,
		GPUsPerNode:  *gpus,
		CachePerNode: perNode,
		Jobs:         *jobs,
		Datasets:     *datasets,
		Rounds:       *rounds,
		JobRounds:    *jobRounds,
		Scheduler:    kind,
		System:       cs,
		Seed:         *seed,
	}
	res, err := hollow.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "hollow run: %d nodes x %d GPUs, %d jobs (%d completed), %d rounds, %s/%s, seed %d\n",
		res.Nodes, *gpus, res.Jobs, res.Completed, res.Rounds, kind, cs, *seed)
	fmt.Fprintf(w, "round latency: p50 %v  p90 %v  p99 %v  max %v\n",
		res.RoundLatency.P50, res.RoundLatency.P90, res.RoundLatency.P99, res.RoundLatency.Max)
	fmt.Fprintf(w, "throughput: %.1f rounds/sec (%.2fs scheduling over %d rounds)\n",
		res.RoundsPerSec, res.TotalSeconds, res.Rounds)
	fmt.Fprintf(w, "push digest: %s\n", res.Digest)
	if *out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *baseline != "" {
		return compareBaseline(w, *baseline, res)
	}
	return nil
}

// compareBaseline fails the run if the p50 round latency regressed more
// than 20% against a previously recorded result.
func compareBaseline(w io.Writer, path string, res *hollow.Result) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base hollow.Result
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.RoundLatency.P50 <= 0 {
		return fmt.Errorf("baseline %s has no p50 round latency", path)
	}
	ratio := float64(res.RoundLatency.P50) / float64(base.RoundLatency.P50)
	fmt.Fprintf(w, "baseline p50 %v -> %v (%.2fx)\n", base.RoundLatency.P50, res.RoundLatency.P50, ratio)
	if ratio > 1.20 {
		return fmt.Errorf("p50 round latency regressed %.0f%% over baseline %s (%v -> %v, limit 20%%)",
			(ratio-1)*100, path, base.RoundLatency.P50, res.RoundLatency.P50)
	}
	return nil
}
