package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

func TestGenerateTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"-jobs", "25", "-window", "2h", "-seed", "9", "-o", path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	jobs, err := workload.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 25 {
		t.Fatalf("wrote %d jobs, want 25", len(jobs))
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateWithSharingAndSpeed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"-jobs", "40", "-window", "1h", "-share", "1", "-speed", "2", "-o", path}); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(path)
	defer f.Close()
	jobs, err := workload.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, j := range jobs {
		names[j.Dataset.Name] = true
		if j.SpeedScale != 2 {
			t.Fatalf("speed scale not propagated: %v", j.SpeedScale)
		}
	}
	if len(names) >= len(jobs) {
		t.Error("full sharing produced all-distinct datasets")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-jobs", "0"}); err == nil {
		t.Error("zero jobs accepted")
	}
}

func TestAnalyzeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"-jobs", "30", "-window", "2h", "-o", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-analyze", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-analyze", "/does/not/exist"}); err == nil {
		t.Error("missing file accepted")
	}
}
