// Command silodtrace generates synthetic job traces with the paper's
// workload shape (heavy-tailed durations, mixed gang sizes, per-job
// private datasets) as JSON lines for silodsim, and summarizes existing
// traces.
//
//	silodtrace -jobs 480 -window 24h -seed 42 -share 0.25 > trace.jsonl
//	silodtrace -analyze trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/stats"
	"repro/internal/unit"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "silodtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) (rerr error) {
	fs := flag.NewFlagSet("silodtrace", flag.ContinueOnError)
	jobs := fs.Int("jobs", 480, "number of jobs")
	window := fs.Duration("window", 24*time.Hour, "arrival window")
	seed := fs.Int64("seed", 42, "random seed")
	share := fs.Float64("share", 0, "fraction of jobs drawing from the shared dataset pool [0,1]")
	speed := fs.Float64("speed", 1, "GPU speed scale (1 = V100)")
	median := fs.Duration("median", 40*time.Minute, "median ideal job duration")
	sigma := fs.Float64("sigma", 2.0, "log-normal sigma of job durations")
	out := fs.String("o", "", "output path (default stdout)")
	analyze := fs.String("analyze", "", "summarize an existing JSONL trace instead of generating one")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *analyze != "" {
		return analyzeTrace(*analyze)
	}
	cfg := workload.DefaultTraceConfig(*seed, *jobs, unit.Duration((*window).Seconds()))
	cfg.ShareFraction = *share
	cfg.SpeedScale = *speed
	cfg.MedianDuration = unit.Duration((*median).Seconds())
	cfg.DurationSigma = *sigma
	trace, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		// Close errors on a write path can mean lost trace data.
		defer func() {
			if cerr := f.Close(); cerr != nil && rerr == nil {
				rerr = cerr
			}
		}()
		w = f
	}
	if err := workload.WriteTrace(w, trace); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "silodtrace: wrote %d jobs (total GPU demand %.0f GPU-hours)\n",
		len(trace), workload.TotalGPUDemand(trace)/3600)
	return nil
}

// analyzeTrace prints the distributional summary of a trace: the
// quantities that determine how hard the trace is for a cache/scheduler
// co-design.
func analyzeTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	jobs, err := workload.ReadTrace(f)
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		return fmt.Errorf("trace is empty")
	}
	durations := make([]float64, 0, len(jobs))
	gpuCounts := map[int]int{}
	datasets := map[string]unit.Bytes{}
	var totalGPUHours, totalBytes, weightedEff float64
	for _, j := range jobs {
		durations = append(durations, j.IdealDuration().Minutes())
		gpuCounts[j.NumGPUs]++
		datasets[j.Dataset.Name] = j.Dataset.Size
		totalGPUHours += float64(j.NumGPUs) * float64(j.IdealDuration()) / 3600
		totalBytes += float64(j.TotalBytes())
		weightedEff += j.CacheEfficiency() * float64(j.TotalBytes())
	}
	var dsBytes unit.Bytes
	dsNames := make([]string, 0, len(datasets))
	for name := range datasets {
		dsNames = append(dsNames, name)
	}
	sort.Strings(dsNames)
	for _, name := range dsNames {
		dsBytes += datasets[name]
	}
	window := jobs[len(jobs)-1].Submit.Sub(jobs[0].Submit)
	fmt.Printf("jobs:              %d over %.1f h\n", len(jobs), window.Minutes()/60)
	fmt.Printf("GPU demand:        %.0f GPU-hours\n", totalGPUHours)
	fmt.Printf("gang mix:          ")
	for _, g := range []int{1, 2, 4, 8} {
		if n := gpuCounts[g]; n > 0 {
			fmt.Printf("%dx:%d  ", g, n)
		}
	}
	fmt.Println()
	fmt.Printf("ideal duration:    p10=%.0f p50=%.0f p90=%.0f p99=%.0f min\n",
		stats.Percentile(durations, 10), stats.Percentile(durations, 50),
		stats.Percentile(durations, 90), stats.Percentile(durations, 99))
	fmt.Printf("distinct datasets: %d (%.1f TB total)\n", len(datasets), float64(dsBytes)/float64(unit.TB))
	fmt.Printf("total reads:       %.1f TB\n", totalBytes/float64(unit.TB))
	if totalBytes > 0 {
		fmt.Printf("mean cache eff.:   %.3f MB/s per GB (read-weighted)\n", weightedEff/totalBytes)
	}
	return nil
}
