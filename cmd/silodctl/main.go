// Command silodctl drives a running silodd deployment.
//
//	silodctl -sched http://127.0.0.1:7071 submit -job j1 -model ResNet-50 \
//	         -dataset imagenet1k -dataset-size 143GB -gpus 1 -epochs 10
//	silodctl -sched http://127.0.0.1:7071 schedule
//	silodctl -sched http://127.0.0.1:7071 jobs
//	silodctl -sched http://127.0.0.1:7071 nodes
//	silodctl -sched http://127.0.0.1:7071 tenants
//	silodctl -dm http://127.0.0.1:7070 stats -job j1
//	silodctl -dm http://127.0.0.1:7070 snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/controlplane"
	"repro/internal/unit"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "silodctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("silodctl", flag.ContinueOnError)
	schedURL := fs.String("sched", "http://127.0.0.1:7071", "scheduler base URL")
	dmURL := fs.String("dm", "http://127.0.0.1:7070", "data manager base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: silodctl [flags] submit|schedule|jobs|nodes|tenants|stats|snapshot|annotations")
	}
	sched := controlplane.NewClient(*schedURL)
	dm := controlplane.NewClient(*dmURL)
	switch rest[0] {
	case "submit":
		return submit(sched, rest[1:])
	case "schedule":
		if err := sched.TriggerSchedule(); err != nil {
			return err
		}
		fmt.Println("scheduled")
		return nil
	case "jobs":
		jobs, err := sched.ListJobs()
		if err != nil {
			return err
		}
		return printJSON(jobs)
	case "nodes":
		nodes, err := sched.Nodes()
		if err != nil {
			return err
		}
		return printJSON(nodes)
	case "tenants":
		tenants, err := sched.Tenants()
		if err != nil {
			return err
		}
		return printJSON(tenants)
	case "annotations":
		ann, err := sched.Annotations()
		if err != nil {
			return err
		}
		return printJSON(ann)
	case "stats":
		sub := flag.NewFlagSet("stats", flag.ContinueOnError)
		job := sub.String("job", "", "job ID")
		if err := sub.Parse(rest[1:]); err != nil {
			return err
		}
		st, err := dm.Stats(*job)
		if err != nil {
			return err
		}
		return printJSON(st)
	case "snapshot":
		snap, err := dm.Snapshot()
		if err != nil {
			return err
		}
		return printJSON(snap)
	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

// submit registers a job with the scheduler, deriving the performance
// profile from the model catalog.
func submit(sched *controlplane.Client, args []string) error {
	sub := flag.NewFlagSet("submit", flag.ContinueOnError)
	job := sub.String("job", "", "job ID")
	model := sub.String("model", "ResNet-50", "model name from the catalog")
	ds := sub.String("dataset", "", "dataset name")
	dsSize := sub.String("dataset-size", "143GB", "dataset size")
	gpus := sub.Int("gpus", 1, "gang size")
	epochs := sub.Float64("epochs", 10, "epochs to train")
	tenantID := sub.String("tenant", "", "submitting tenant (empty = untenanted flat pool)")
	if err := sub.Parse(args); err != nil {
		return err
	}
	m, err := workload.ModelByName(*model)
	if err != nil {
		return err
	}
	size, err := unit.ParseBytes(*dsSize)
	if err != nil {
		return err
	}
	spec := workload.JobSpec{
		ID:      *job,
		Model:   m,
		Dataset: workload.Dataset{Name: *ds, Size: size},
		NumGPUs: *gpus,
	}
	spec.NumSteps = int64(*epochs * float64(size) / float64(spec.StepBytesTotal()))
	if spec.NumSteps < 1 {
		spec.NumSteps = 1
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	req := controlplane.SubmitJobRequest{
		JobID:           spec.ID,
		Model:           m.Name,
		Dataset:         spec.Dataset.Name,
		DatasetSize:     spec.Dataset.Size,
		NumGPUs:         spec.NumGPUs,
		IdealThroughput: spec.IdealThroughput(),
		TotalBytes:      spec.TotalBytes(),
		Tenant:          *tenantID,
	}
	if err := sched.SubmitJob(req); err != nil {
		return err
	}
	fmt.Printf("submitted %s (%s on %s, %d GPUs, ideal %s)\n",
		spec.ID, m.Name, spec.Dataset.Name, spec.NumGPUs, spec.IdealThroughput())
	return nil
}

func printJSON(v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
