package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/datamgr"
	"repro/internal/policy"
	"repro/internal/unit"
)

// stack boots an in-process control plane and returns the service URLs.
func stack(t *testing.T) (schedURL, dmURL string) {
	t.Helper()
	mgr := datamgr.New(unit.TiB(1), unit.MBpsOf(500), 1, nil)
	dmSrv := httptest.NewServer(controlplane.NewDataManagerServer(mgr))
	t.Cleanup(dmSrv.Close)
	pol, err := policy.Build(policy.FIFOKind, policy.SiloD, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := controlplane.NewSchedulerServer(
		core.Cluster{GPUs: 8, Cache: unit.TiB(1), RemoteIO: unit.MBpsOf(500)},
		pol, controlplane.NewClient(dmSrv.URL), time.Now)
	if err != nil {
		t.Fatal(err)
	}
	schedSrv := httptest.NewServer(sched)
	t.Cleanup(schedSrv.Close)
	return schedSrv.URL, dmSrv.URL
}

func TestSubmitScheduleJobsStats(t *testing.T) {
	schedURL, dmURL := stack(t)
	base := []string{"-sched", schedURL, "-dm", dmURL}
	cmds := [][]string{
		append(base, "submit", "-job", "j1", "-model", "ResNet-50",
			"-dataset", "imagenet1k", "-dataset-size", "143GB", "-gpus", "1", "-epochs", "3"),
		append(base, "schedule"),
		append(base, "jobs"),
		append(base, "stats", "-job", "j1"),
		append(base, "annotations"),
		append(base, "snapshot"),
	}
	for _, args := range cmds {
		if err := run(args); err != nil {
			t.Fatalf("silodctl %v: %v", args[len(base):], err)
		}
	}
}

func TestErrors(t *testing.T) {
	schedURL, dmURL := stack(t)
	base := []string{"-sched", schedURL, "-dm", dmURL}
	if err := run(base); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run(append(base, "frobnicate")); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(append(base, "submit", "-job", "x", "-model", "NotAModel", "-dataset", "d")); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(append(base, "stats", "-job", "ghost")); err == nil {
		t.Error("stats for unknown job accepted")
	}
}
