package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const badmod = "testdata/badmod"

// runLint invokes the CLI entry point and captures both streams.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestBadModuleFindings lints the known-bad fixture module and pins
// the exit code and the diagnostic line format.
func TestBadModuleFindings(t *testing.T) {
	code, stdout, stderr := runLint(t, "-root", badmod)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, re := range []string{
		`(?m)^internal/sim/sim\.go:\d+:\d+: wallclock: .*time\.Now`,
		`(?m)^internal/sim/sim\.go:\d+:\d+: rngpurity: .*math/rand`,
		`(?m)^internal/cache/cache\.go:\d+:\d+: lockcheck: read of c\.n without holding c\.mu`,
		`(?m)^internal/cache/cache\.go:\d+:\d+: lockorder: lock order cycle: .*opposite order`,
		`(?m)^internal/cache/cache\.go:\d+:\d+: goleak: goroutine has no shutdown path`,
		`(?m)^internal/cache/cache\.go:\d+:\d+: errflow: error value assigned to _`,
		`(?m)^internal/faults/faults\.go:\d+:\d+: wallclock: .*time\.Now`,
		`(?m)^internal/faults/faults\.go:\d+:\d+: goleak: goroutine has no shutdown path`,
		`(?m)^internal/faults/faults\.go:\d+:\d+: errflow: error value assigned to _`,
		`(?m)^internal/runner/runner\.go:\d+:\d+: goleak: goroutine has no shutdown path`,
		`(?m)^internal/runner/runner\.go:\d+:\d+: lockcheck: read of p\.results without holding p\.mu`,
		`(?m)^internal/tenant/tenant\.go:\d+:\d+: lockcheck: write to r\.tenants without holding r\.mu`,
		`(?m)^internal/tenant/tenant\.go:\d+:\d+: errflow: error value assigned to _`,
		`(?m)^internal/policy/policy\.go:\d+:\d+: maporder: float accumulation into total in map iteration order`,
		`(?m)^internal/policy/policy\.go:\d+:\d+: purecheck: silod:pure function Score calls time\.Now`,
		`(?m)^internal/policy/policy\.go:\d+:\d+: hotalloc: silod:hotpath function Hot allocates: make`,
	} {
		if !regexp.MustCompile(re).MatchString(stdout) {
			t.Errorf("stdout missing diagnostic matching %s\nstdout:\n%s", re, stdout)
		}
	}
	if !strings.Contains(stderr, "17 finding(s)") {
		t.Errorf("stderr missing finding count, got:\n%s", stderr)
	}
}

// TestAllowlistSilences covers the escape hatch: an allow rule for the
// bad file turns the run clean, and a rule that matches nothing is
// reported stale.
func TestAllowlistSilences(t *testing.T) {
	allow := filepath.Join(t.TempDir(), "lint.allow")
	content := "# test exceptions\n" +
		"* internal/sim/sim.go\n" +
		"* internal/cache/cache.go\n" +
		"* internal/faults/faults.go\n" +
		"* internal/runner/runner.go\n" +
		"* internal/tenant/tenant.go\n" +
		"* internal/policy/policy.go\n" +
		"floatcmp internal/sim/never.go\n"
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runLint(t, "-root", badmod, "-allow", allow)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("allowlisted run should print nothing to stdout, got:\n%s", stdout)
	}
	if !strings.Contains(stderr, "stale allow rule") || !strings.Contains(stderr, "internal/sim/never.go") {
		t.Errorf("stderr missing stale-rule report, got:\n%s", stderr)
	}
}

// TestDisableFlag turns off every triggered analyzer and expects a
// clean exit.
func TestDisableFlag(t *testing.T) {
	code, stdout, stderr := runLint(t, "-root", badmod,
		"-disable", "wallclock,rngpurity,lockcheck,lockorder,goleak,errflow,maporder,purecheck,hotalloc")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if code, _, stderr = runLint(t, "-root", badmod, "-disable", "nosuch"); code != 2 {
		t.Fatalf("unknown analyzer: exit code = %d, want 2\nstderr:\n%s", code, stderr)
	} else if !strings.Contains(stderr, `unknown analyzer "nosuch"`) {
		t.Errorf("stderr missing unknown-analyzer message, got:\n%s", stderr)
	}
}

// TestListFlag prints the analyzer roster without loading anything.
func TestListFlag(t *testing.T) {
	code, stdout, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{
		"wallclock", "rngpurity", "unitsafety", "metricnames", "floatcmp",
		"lockcheck", "lockorder", "goleak", "errflow",
		"maporder", "purecheck", "hotalloc",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

// TestJSONOutput pins the -json wire shape: one object per line with
// path/line/col/analyzer/message, the same findings as the text mode.
func TestJSONOutput(t *testing.T) {
	code, stdout, stderr := runLint(t, "-root", badmod, "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 17 {
		t.Fatalf("got %d JSON lines, want 17:\n%s", len(lines), stdout)
	}
	byAnalyzer := map[string]jsonDiagnostic{}
	for _, line := range lines {
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if d.Path == "" || d.Line <= 0 || d.Col <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		byAnalyzer[d.Analyzer] = d
	}
	for _, want := range []string{"wallclock", "rngpurity", "lockcheck", "lockorder", "goleak", "errflow", "maporder", "purecheck", "hotalloc"} {
		if _, ok := byAnalyzer[want]; !ok {
			t.Errorf("no %s finding in JSON output:\n%s", want, stdout)
		}
	}
	if d := byAnalyzer["goleak"]; d.Path != "internal/runner/runner.go" {
		t.Errorf("goleak path = %q, want internal/runner/runner.go", d.Path)
	}
	if strings.Contains(stdout, ": goleak: ") {
		t.Errorf("-json output contains text-format diagnostics:\n%s", stdout)
	}
}

// TestBadRoot exits 2 when the root is not a module.
func TestBadRoot(t *testing.T) {
	code, _, stderr := runLint(t, "-root", t.TempDir())
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr:\n%s", code, stderr)
	}
}

// TestUnjustifiedAllowRule: a rule with no #-comment directly above
// its block fails the run even when every finding is covered.
func TestUnjustifiedAllowRule(t *testing.T) {
	allow := filepath.Join(t.TempDir(), "lint.allow")
	content := "# the module is known-bad end to end\n" +
		"* internal/...\n" +
		"\n" +
		"errflow internal/tenant/tenant.go\n"
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runLint(t, "-root", badmod, "-allow", allow)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("covered findings should not print, got:\n%s", stdout)
	}
	if !strings.Contains(stderr, "allow rule without a justification comment") ||
		!strings.Contains(stderr, "errflow internal/tenant/tenant.go") {
		t.Errorf("stderr missing unjustified-rule report, got:\n%s", stderr)
	}
	if n := strings.Count(stderr, "without a justification comment"); n != 1 {
		t.Errorf("want exactly the blank-line-separated rule reported, got %d:\n%s", n, stderr)
	}
}

// TestWorkersDeterministic pins the parallel driver's contract: the
// findings stream is byte-identical at any worker count.
func TestWorkersDeterministic(t *testing.T) {
	code1, out1, _ := runLint(t, "-root", badmod, "-workers", "1")
	code4, out4, _ := runLint(t, "-root", badmod, "-workers", "4")
	if code1 != 1 || code4 != 1 {
		t.Fatalf("exit codes = %d, %d, want 1, 1", code1, code4)
	}
	if out1 != out4 {
		t.Errorf("-workers=1 and -workers=4 diverge:\n--- workers=1\n%s--- workers=4\n%s", out1, out4)
	}
	if code, _, stderr := runLint(t, "-root", badmod, "-workers", "-1"); code != 2 {
		t.Fatalf("negative workers: exit code = %d, want 2\nstderr:\n%s", code, stderr)
	}
}
