package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

const badmod = "testdata/badmod"

// runLint invokes the CLI entry point and captures both streams.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestBadModuleFindings lints the known-bad fixture module and pins
// the exit code and the diagnostic line format.
func TestBadModuleFindings(t *testing.T) {
	code, stdout, stderr := runLint(t, "-root", badmod)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, re := range []string{
		`(?m)^internal/sim/sim\.go:\d+:\d+: wallclock: .*time\.Now`,
		`(?m)^internal/sim/sim\.go:\d+:\d+: rngpurity: .*math/rand`,
		`(?m)^internal/cache/cache\.go:\d+:\d+: lockcheck: read of c\.n without holding c\.mu`,
		`(?m)^internal/cache/cache\.go:\d+:\d+: lockorder: lock order cycle: .*opposite order`,
		`(?m)^internal/cache/cache\.go:\d+:\d+: goleak: goroutine has no shutdown path`,
		`(?m)^internal/cache/cache\.go:\d+:\d+: errflow: error value assigned to _`,
		`(?m)^internal/faults/faults\.go:\d+:\d+: wallclock: .*time\.Now`,
		`(?m)^internal/faults/faults\.go:\d+:\d+: goleak: goroutine has no shutdown path`,
		`(?m)^internal/faults/faults\.go:\d+:\d+: errflow: error value assigned to _`,
		`(?m)^internal/runner/runner\.go:\d+:\d+: goleak: goroutine has no shutdown path`,
		`(?m)^internal/runner/runner\.go:\d+:\d+: lockcheck: read of p\.results without holding p\.mu`,
		`(?m)^internal/tenant/tenant\.go:\d+:\d+: lockcheck: write to r\.tenants without holding r\.mu`,
		`(?m)^internal/tenant/tenant\.go:\d+:\d+: errflow: error value assigned to _`,
		`(?m)^internal/policy/policy\.go:\d+:\d+: maporder: float accumulation into total in map iteration order`,
		`(?m)^internal/policy/policy\.go:\d+:\d+: purecheck: silod:pure function Score calls time\.Now`,
		`(?m)^internal/policy/policy\.go:\d+:\d+: hotalloc: silod:hotpath function Hot allocates: make`,
		`(?m)^internal/policy/policy\.go:\d+:\d+: purecheck: silod:pure-requires: solveDelta is not annotated`,
		`(?m)^internal/experiments/experiments\.go:\d+:\d+: detclose: simulation root Figure99 transitively reaches a wall-clock read \(time\.Now\)`,
		`(?m)^internal/controlplane/controlplane\.go:\d+:\d+: inputflow: untrusted Req\.Blocks flows into allocation size`,
		`(?m)^internal/tenant/slo\.go:\d+:\d+: exhaust: switch over closed enum tenant\.sloClass misses sloSheddable`,
		`(?m)^internal/admission/admission\.go:\d+:\d+: exhaust: switch over closed enum admission\.queueState misses stateFull`,
		`(?m)^internal/admission/admission\.go:\d+:\d+: inputflow: untrusted loadSpec\.Burst flows into allocation size`,
		`(?m)^internal/admission/admission\.go:\d+:\d+: detclose: simulation root ReplayStorm transitively reaches a wall-clock read \(time\.Now\)`,
	} {
		if !regexp.MustCompile(re).MatchString(stdout) {
			t.Errorf("stdout missing diagnostic matching %s\nstdout:\n%s", re, stdout)
		}
	}
	if !strings.Contains(stderr, "24 finding(s)") {
		t.Errorf("stderr missing finding count, got:\n%s", stderr)
	}
}

// TestAllowlistSilences covers the escape hatch: an allow rule for the
// bad file turns the run clean, and a rule that matches nothing is
// reported stale.
func TestAllowlistSilences(t *testing.T) {
	allow := filepath.Join(t.TempDir(), "lint.allow")
	content := "# test exceptions\n" +
		"* internal/sim/sim.go\n" +
		"* internal/admission/admission.go\n" +
		"* internal/cache/cache.go\n" +
		"* internal/faults/faults.go\n" +
		"* internal/runner/runner.go\n" +
		"* internal/tenant/tenant.go\n" +
		"* internal/tenant/slo.go\n" +
		"* internal/policy/policy.go\n" +
		"* internal/experiments/experiments.go\n" +
		"* internal/controlplane/controlplane.go\n" +
		"floatcmp internal/sim/never.go\n"
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runLint(t, "-root", badmod, "-allow", allow)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("allowlisted run should print nothing to stdout, got:\n%s", stdout)
	}
	if !strings.Contains(stderr, "stale allow rule") || !strings.Contains(stderr, "internal/sim/never.go") {
		t.Errorf("stderr missing stale-rule report, got:\n%s", stderr)
	}
}

// TestAllowInteractionNewAnalyzers covers the allowlist against the
// whole-program analyzers: a justified detclose rule retires the
// seeded root finding, a rule left over after a fix is reported stale,
// and both behaviors are byte-identical at any worker count (the
// summary phase must not perturb the allow/stale bookkeeping).
func TestAllowInteractionNewAnalyzers(t *testing.T) {
	allow := filepath.Join(t.TempDir(), "lint.allow")
	content := "# Figure99 is the seeded determinism leak; kept on purpose\n" +
		"detclose internal/experiments/experiments.go\n" +
		"# ReplayStorm is the serving-mode twin of the same leak\n" +
		"detclose internal/admission/admission.go\n" +
		"# retired: slo.go gained full switch coverage (rule should be stale)\n" +
		"inputflow internal/tenant/slo.go\n"
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var prevOut, prevErr string
	for i, w := range []string{"1", "4"} {
		code, stdout, stderr := runLint(t, "-root", badmod, "-allow", allow, "-workers", w)
		if code != 1 {
			t.Fatalf("workers=%s: exit code = %d, want 1 (other findings stay)\nstderr:\n%s", w, code, stderr)
		}
		if strings.Contains(stdout, "detclose") {
			t.Errorf("workers=%s: allowed detclose finding still printed:\n%s", w, stdout)
		}
		if !strings.Contains(stdout, "inputflow: untrusted Req.Blocks") {
			t.Errorf("workers=%s: the unallowed inputflow finding must still print:\n%s", w, stdout)
		}
		if !strings.Contains(stderr, "stale allow rule") || !strings.Contains(stderr, "inputflow internal/tenant/slo.go") {
			t.Errorf("workers=%s: stale-rule report missing:\n%s", w, stderr)
		}
		if i > 0 && (stdout != prevOut || stderr != prevErr) {
			t.Errorf("allow bookkeeping diverges across -workers:\n--- prev\n%s%s\n--- now\n%s%s", prevOut, prevErr, stdout, stderr)
		}
		prevOut, prevErr = stdout, stderr
	}
}

// TestDisableFlag turns off every triggered analyzer and expects a
// clean exit.
func TestDisableFlag(t *testing.T) {
	code, stdout, stderr := runLint(t, "-root", badmod,
		"-disable", "wallclock,rngpurity,lockcheck,lockorder,goleak,errflow,maporder,purecheck,hotalloc,detclose,inputflow,exhaust")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if code, _, stderr = runLint(t, "-root", badmod, "-disable", "nosuch"); code != 2 {
		t.Fatalf("unknown analyzer: exit code = %d, want 2\nstderr:\n%s", code, stderr)
	} else if !strings.Contains(stderr, `unknown analyzer "nosuch"`) {
		t.Errorf("stderr missing unknown-analyzer message, got:\n%s", stderr)
	}
}

// TestListFlag prints the analyzer roster without loading anything.
// The expectations come from the registry itself, so a new analyzer is
// covered the moment it lands in lint.All().
func TestListFlag(t *testing.T) {
	code, stdout, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	all := lint.All()
	if len(all) != 15 {
		t.Errorf("registry has %d analyzers, want 15 (update this test and README.md together)", len(all))
	}
	for _, an := range all {
		if !strings.Contains(stdout, an.Name) {
			t.Errorf("-list output missing %s:\n%s", an.Name, stdout)
		}
	}
}

// TestReadmeAnalyzerCount keeps README.md's prose in lock step with
// the registry: the spelled-out analyzer count must match lint.All().
func TestReadmeAnalyzerCount(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	words := map[int]string{
		12: "twelve", 13: "thirteen", 14: "fourteen", 15: "fifteen",
		16: "sixteen", 17: "seventeen", 18: "eighteen", 19: "nineteen", 20: "twenty",
	}
	n := len(lint.All())
	want, ok := words[n]
	if !ok {
		t.Fatalf("registry has %d analyzers; extend the number-word table", n)
	}
	if !strings.Contains(string(data), want+" analyzers") {
		t.Errorf("README.md does not say %q analyzers; the registry has %d — update the prose", want, n)
	}
}

// TestJSONOutput pins the -json wire shape: one object per line with
// path/line/col/analyzer/message, the same findings as the text mode.
func TestJSONOutput(t *testing.T) {
	code, stdout, stderr := runLint(t, "-root", badmod, "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 24 {
		t.Fatalf("got %d JSON lines, want 24:\n%s", len(lines), stdout)
	}
	byAnalyzer := map[string]jsonDiagnostic{}
	for _, line := range lines {
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if d.Path == "" || d.Line <= 0 || d.Col <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		byAnalyzer[d.Analyzer] = d
	}
	for _, want := range []string{"wallclock", "rngpurity", "lockcheck", "lockorder", "goleak", "errflow", "maporder", "purecheck", "hotalloc", "detclose", "inputflow", "exhaust"} {
		if _, ok := byAnalyzer[want]; !ok {
			t.Errorf("no %s finding in JSON output:\n%s", want, stdout)
		}
	}
	if d := byAnalyzer["goleak"]; d.Path != "internal/runner/runner.go" {
		t.Errorf("goleak path = %q, want internal/runner/runner.go", d.Path)
	}
	if strings.Contains(stdout, ": goleak: ") {
		t.Errorf("-json output contains text-format diagnostics:\n%s", stdout)
	}
}

// TestWhyFlag pins the -why payload: the detclose finding prints its
// full call path — root, intermediate hops, and the clock witness —
// each hop anchored to a file:line in the fixture.
func TestWhyFlag(t *testing.T) {
	code, stdout, _ := runLint(t, "-root", badmod, "-why")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	for _, want := range []string{
		"\troot badmod/internal/experiments.Figure99 (internal/experiments/experiments.go:",
		"\tcalls badmod/internal/experiments.measure (internal/experiments/experiments.go:",
		"\tcalls badmod/internal/experiments.stamp (internal/experiments/experiments.go:",
		"\ttime.Now (internal/experiments/experiments.go:",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-why output missing hop %q:\n%s", want, stdout)
		}
	}
	// Without -why the trace stays out of the stream.
	_, plain, _ := runLint(t, "-root", badmod)
	if strings.Contains(plain, "\troot ") {
		t.Errorf("trace printed without -why:\n%s", plain)
	}
}

// gitBadmod copies the badmod fixture into a fresh git repository and
// returns its path plus a helper that commits the current state.
func gitBadmod(t *testing.T) (string, func(msg string)) {
	t.Helper()
	dir := t.TempDir()
	if err := filepath.WalkDir(badmod, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(badmod, path)
		dst := filepath.Join(dir, rel)
		if d.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(dst, data, 0o644)
	}); err != nil {
		t.Fatal(err)
	}
	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", args...)
		cmd.Dir = dir
		cmd.Env = append(os.Environ(),
			"GIT_AUTHOR_NAME=t", "GIT_AUTHOR_EMAIL=t@t",
			"GIT_COMMITTER_NAME=t", "GIT_COMMITTER_EMAIL=t@t")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	git("init", "-q", "-b", "main")
	git("add", ".")
	git("commit", "-q", "-m", "seed")
	return dir, func(msg string) {
		git("add", ".")
		git("commit", "-q", "-m", msg)
	}
}

// TestDiffMode covers -diff end to end on a git-initialized badmod
// copy: an unchanged tree reports nothing, a change to one package
// reports only that package (plus reverse deps), and a non-Go change
// falls back to the full run.
func TestDiffMode(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not installed")
	}
	dir, _ := gitBadmod(t)

	// No changes since HEAD: nothing to report, even though the module
	// has 24 findings.
	code, stdout, _ := runLint(t, "-root", dir, "-diff", "HEAD")
	if code != 0 || stdout != "" {
		t.Fatalf("clean diff: code = %d, stdout:\n%s", code, stdout)
	}

	// Touch one package: only its findings (slo.go's tenant package has
	// no reverse deps inside badmod) come back.
	slo := filepath.Join(dir, "internal", "tenant", "slo.go")
	data, err := os.ReadFile(slo)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(slo, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runLint(t, "-root", dir, "-diff", "HEAD")
	if code != 1 {
		t.Fatalf("diff run: code = %d\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "exhaust: switch over closed enum tenant.sloClass") ||
		!strings.Contains(stdout, "lockcheck: write to r.tenants") {
		t.Errorf("diff run missing the tenant package's findings:\n%s", stdout)
	}
	if strings.Contains(stdout, "internal/cache/") || strings.Contains(stdout, "internal/experiments/") {
		t.Errorf("diff run reports packages the change cannot affect:\n%s", stdout)
	}

	// A non-Go change falls back to the full run: all 24 findings.
	if err := os.WriteFile(slo, data, 0o644); err != nil { // revert
		t.Fatal(err)
	}
	gomod := filepath.Join(dir, "go.mod")
	mod, err := os.ReadFile(gomod)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gomod, append(mod, "// touched\n"...), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runLint(t, "-root", dir, "-diff", "HEAD")
	if code != 1 || !strings.Contains(stderr, "24 finding(s)") {
		t.Errorf("non-Go diff should run full: code = %d, stderr:\n%s", code, stderr)
	}

	// An unknown ref is a usage error, not a silent full run.
	if code, _, _ = runLint(t, "-root", dir, "-diff", "no-such-ref"); code != 2 {
		t.Errorf("bad ref: code = %d, want 2", code)
	}
}

// TestBadRoot exits 2 when the root is not a module.
func TestBadRoot(t *testing.T) {
	code, _, stderr := runLint(t, "-root", t.TempDir())
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr:\n%s", code, stderr)
	}
}

// TestUnjustifiedAllowRule: a rule with no #-comment directly above
// its block fails the run even when every finding is covered.
func TestUnjustifiedAllowRule(t *testing.T) {
	allow := filepath.Join(t.TempDir(), "lint.allow")
	content := "# the module is known-bad end to end\n" +
		"* internal/...\n" +
		"\n" +
		"errflow internal/tenant/tenant.go\n"
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runLint(t, "-root", badmod, "-allow", allow)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("covered findings should not print, got:\n%s", stdout)
	}
	if !strings.Contains(stderr, "allow rule without a justification comment") ||
		!strings.Contains(stderr, "errflow internal/tenant/tenant.go") {
		t.Errorf("stderr missing unjustified-rule report, got:\n%s", stderr)
	}
	if n := strings.Count(stderr, "without a justification comment"); n != 1 {
		t.Errorf("want exactly the blank-line-separated rule reported, got %d:\n%s", n, stderr)
	}
}

// TestWorkersDeterministic pins the parallel driver's contract: the
// findings stream is byte-identical at any worker count.
func TestWorkersDeterministic(t *testing.T) {
	code1, out1, _ := runLint(t, "-root", badmod, "-workers", "1")
	code4, out4, _ := runLint(t, "-root", badmod, "-workers", "4")
	if code1 != 1 || code4 != 1 {
		t.Fatalf("exit codes = %d, %d, want 1, 1", code1, code4)
	}
	if out1 != out4 {
		t.Errorf("-workers=1 and -workers=4 diverge:\n--- workers=1\n%s--- workers=4\n%s", out1, out4)
	}
	if code, _, stderr := runLint(t, "-root", badmod, "-workers", "-1"); code != 2 {
		t.Fatalf("negative workers: exit code = %d, want 2\nstderr:\n%s", code, stderr)
	}
}
