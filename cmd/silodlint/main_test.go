package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const badmod = "testdata/badmod"

// runLint invokes the CLI entry point and captures both streams.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestBadModuleFindings lints the known-bad fixture module and pins
// the exit code and the diagnostic line format.
func TestBadModuleFindings(t *testing.T) {
	code, stdout, stderr := runLint(t, "-root", badmod)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, re := range []string{
		`(?m)^internal/sim/sim\.go:\d+:\d+: wallclock: .*time\.Now`,
		`(?m)^internal/sim/sim\.go:\d+:\d+: rngpurity: .*math/rand`,
	} {
		if !regexp.MustCompile(re).MatchString(stdout) {
			t.Errorf("stdout missing diagnostic matching %s\nstdout:\n%s", re, stdout)
		}
	}
	if !strings.Contains(stderr, "2 finding(s)") {
		t.Errorf("stderr missing finding count, got:\n%s", stderr)
	}
}

// TestAllowlistSilences covers the escape hatch: an allow rule for the
// bad file turns the run clean, and a rule that matches nothing is
// reported stale.
func TestAllowlistSilences(t *testing.T) {
	allow := filepath.Join(t.TempDir(), "lint.allow")
	content := "# test exceptions\n" +
		"* internal/sim/sim.go\n" +
		"floatcmp internal/sim/never.go\n"
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runLint(t, "-root", badmod, "-allow", allow)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("allowlisted run should print nothing to stdout, got:\n%s", stdout)
	}
	if !strings.Contains(stderr, "stale allow rule") || !strings.Contains(stderr, "internal/sim/never.go") {
		t.Errorf("stderr missing stale-rule report, got:\n%s", stderr)
	}
}

// TestDisableFlag turns off both triggered analyzers and expects a
// clean exit.
func TestDisableFlag(t *testing.T) {
	code, stdout, stderr := runLint(t, "-root", badmod, "-disable", "wallclock,rngpurity")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if code, _, stderr = runLint(t, "-root", badmod, "-disable", "nosuch"); code != 2 {
		t.Fatalf("unknown analyzer: exit code = %d, want 2\nstderr:\n%s", code, stderr)
	} else if !strings.Contains(stderr, `unknown analyzer "nosuch"`) {
		t.Errorf("stderr missing unknown-analyzer message, got:\n%s", stderr)
	}
}

// TestListFlag prints the analyzer roster without loading anything.
func TestListFlag(t *testing.T) {
	code, stdout, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"wallclock", "rngpurity", "unitsafety", "metricnames", "floatcmp"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

// TestBadRoot exits 2 when the root is not a module.
func TestBadRoot(t *testing.T) {
	code, _, stderr := runLint(t, "-root", t.TempDir())
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr:\n%s", code, stderr)
	}
}
