// Command silodlint runs SiloD's project-specific static-analysis
// suite (internal/lint) over the module and exits non-zero on any
// finding not covered by the allowlist. It is part of the pre-merge
// gate: `make lint` / `make verify`.
//
// Usage:
//
//	silodlint [-root dir] [-allow file] [-disable a,b] [-workers n] [-diff ref] [-why] [-list] [-json] [-v]
//
// Diagnostics print one per line as
//
//	path/to/file.go:line:col: analyzer: message
//
// with paths relative to the module root, the same shape lint.allow
// rules match against. With -json each finding is instead one JSON
// object per line ({"path","line","col","analyzer","message"}), for
// editor and CI integrations.
//
// -diff <ref> lints only the packages whose files changed since the
// git ref, plus their reverse dependencies inside the module — the
// whole module is still loaded and analyzed (the whole-program
// analyzers need it), only the reporting is restricted. A diff that
// touches no .go file falls back to a full run. -why appends the
// whole-program call path under each finding that carries one
// (detclose traces root → call → witness). See docs/static-analysis.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json wire shape: one object per line, stable
// field names for editor and CI consumers.
type jsonDiagnostic struct {
	Path     string `json:"path"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run executes the CLI; it returns the process exit code (0 clean,
// 1 findings, 2 usage or load failure).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("silodlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", ".", "module root to lint (directory containing go.mod)")
	allowPath := fs.String("allow", "", "allowlist file (default: <root>/lint.allow if present)")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as one JSON object per line")
	workers := fs.Int("workers", 0, "analysis worker goroutines (0 = GOMAXPROCS, 1 = sequential); output is identical either way")
	diffRef := fs.String("diff", "", "report only packages changed since this git ref (plus reverse deps); non-Go diffs fall back to a full run")
	why := fs.Bool("why", false, "print the whole-program call path under findings that carry one")
	verbose := fs.Bool("v", false, "print load/run statistics to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 0 {
		fmt.Fprintln(stderr, "silodlint: -workers must be >= 0")
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	opts := lint.Options{Disable: map[string]bool{}, Workers: *workers}
	for _, name := range strings.Split(*disable, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if lint.ByName(name) == nil {
			fmt.Fprintf(stderr, "silodlint: -disable: unknown analyzer %q\n", name)
			return 2
		}
		opts.Disable[name] = true
	}

	if *diffRef != "" {
		changed, ok, err := changedSince(*root, *diffRef)
		if err != nil {
			fmt.Fprintf(stderr, "silodlint: -diff: %v\n", err)
			return 2
		}
		if ok {
			opts.ChangedFiles = changed
			if *verbose {
				fmt.Fprintf(stderr, "silodlint: diff vs %s: %d changed .go file(s)\n", *diffRef, len(changed))
			}
		} else if *verbose {
			fmt.Fprintf(stderr, "silodlint: diff vs %s touches no .go file; running full\n", *diffRef)
		}
	}

	file := *allowPath
	if file == "" {
		file = filepath.Join(*root, "lint.allow")
	}
	allow, err := lint.ParseAllowFile(file)
	if err != nil {
		fmt.Fprintf(stderr, "silodlint: %v\n", err)
		return 2
	}

	start := time.Now()
	res, err := lint.Run(*root, opts)
	if err != nil {
		fmt.Fprintf(stderr, "silodlint: %v\n", err)
		return 2
	}
	if *verbose {
		fmt.Fprintf(stderr, "silodlint: %d packages, %d raw finding(s) in %v\n",
			res.Packages, len(res.Diagnostics), time.Since(start).Round(time.Millisecond))
	}

	enc := json.NewEncoder(stdout)
	var findings int
	for _, d := range res.Diagnostics {
		if allow.Allows(d) {
			if *verbose {
				fmt.Fprintf(stderr, "silodlint: allowed: %s\n", d)
			}
			continue
		}
		findings++
		if *jsonOut {
			if err := enc.Encode(jsonDiagnostic{
				Path:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintf(stderr, "silodlint: %v\n", err)
				return 2
			}
			continue
		}
		fmt.Fprintln(stdout, d.String())
		if *why {
			for _, h := range d.Trace {
				fmt.Fprintf(stdout, "\t%s (%s:%d)\n", h.Call, h.Pos.Filename, h.Pos.Line)
			}
		}
	}
	for _, r := range allow.Unused() {
		fmt.Fprintf(stderr, "silodlint: stale allow rule (matched nothing): %s: %s %s\n", r.Source, r.Analyzer, r.Path)
	}
	bad := allow.Unjustified()
	for _, r := range bad {
		fmt.Fprintf(stderr, "silodlint: allow rule without a justification comment: %s: %s %s\n", r.Source, r.Analyzer, r.Path)
	}
	if findings > 0 || len(bad) > 0 {
		if findings > 0 {
			fmt.Fprintf(stderr, "silodlint: %d finding(s)\n", findings)
		}
		return 1
	}
	return 0
}

// changedSince lists the files changed in root since the git ref,
// relative to the module root. ok is false when the diff touches no
// .go file — the caller falls back to a full run, so config-only
// changes (go.mod, lint.allow, CI) never silently skip the gate.
func changedSince(root, ref string) (changed []string, ok bool, err error) {
	// --relative keeps paths module-root-relative even when the module
	// is not at the git repository's top level.
	cmd := exec.Command("git", "diff", "--name-only", "--relative", ref, "--", ".")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		if ee, isExit := err.(*exec.ExitError); isExit && len(ee.Stderr) > 0 {
			return nil, false, fmt.Errorf("git diff %s: %s", ref, strings.TrimSpace(string(ee.Stderr)))
		}
		return nil, false, fmt.Errorf("git diff %s: %v", ref, err)
	}
	changed = []string{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line = strings.TrimSpace(line); line == "" {
			continue
		}
		changed = append(changed, line)
		if strings.HasSuffix(line, ".go") {
			ok = true
		}
	}
	// An empty diff is a valid (empty) change set — nothing to report.
	// Only a non-empty diff with no .go file falls back to a full run.
	if len(changed) == 0 {
		ok = true
	}
	return changed, ok, nil
}
