// Package experiments is a deliberately non-conforming fixture: a
// declared simulation root whose transitive call graph reaches the wall
// clock without an injection boundary, so detclose proves the
// whole-program determinism closure catches it. The package is outside
// wallclock's path scope, so only the call-graph analyzer fires.
package experiments

import "time"

// Figure99 is the seeded determinism leak: the root never touches the
// clock itself — the leak is two frames down, which only the
// whole-program summary pass can see.
// silod:sim-root
func Figure99() float64 {
	return measure()
}

// measure launders the clock access through one more frame.
func measure() float64 {
	return stamp().Sub(stamp()).Seconds()
}

func stamp() time.Time {
	return time.Now()
}
