// slo.go seeds the exhaust violation: a closed SLO enum whose switch
// forgets the newest tier and silently falls through.
package tenant

// sloClass mirrors the real tenant package's service tiers.
// silod:enum
type sloClass int

const (
	sloStandard sloClass = iota
	sloCritical
	sloSheddable
)

// sloWeight breaks exhaust: sloSheddable is not covered and there is no
// default, so sheddable tenants silently weigh the zero value.
func sloWeight(c sloClass) float64 {
	switch c {
	case sloStandard:
		return 1
	case sloCritical:
		return 2
	}
	return 0
}
