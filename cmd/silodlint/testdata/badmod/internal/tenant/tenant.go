// Package tenant is a deliberately non-conforming fixture: a
// tenant-registry shape that writes its guarded map without the lock
// and discards an admission error, so lockcheck and errflow sweep the
// real tenant package's idioms.
package tenant

import (
	"errors"
	"sync"
)

// registry mirrors the real tenant registry's guarded-map layout.
type registry struct {
	mu      sync.Mutex
	tenants map[string]int // guarded by mu
}

// register breaks lockcheck: writes tenants without holding mu.
func (r *registry) register(id string) {
	r.tenants[id] = 1
}

// admit stands in for the admission controller's quota check.
func admit(id string) error {
	if id == "" {
		return errors.New("over quota")
	}
	return nil
}

// submit breaks errflow: the admission rejection is discarded.
func submit(id string) {
	_ = admit(id)
}
