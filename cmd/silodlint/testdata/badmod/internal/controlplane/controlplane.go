// Package controlplane is a deliberately non-conforming fixture: a
// wire-decoded request whose raw field sizes an allocation with no
// guard and no validator, so inputflow sweeps the real control plane's
// decode-path idioms.
package controlplane

// Req mirrors a scheduler API request: it arrives off the wire.
// silod:untrusted
type Req struct {
	Blocks int
}

// reserve breaks inputflow: the untrusted count sizes an allocation
// before anything bounds it.
func reserve(req Req) []int64 {
	return make([]int64, req.Blocks)
}
