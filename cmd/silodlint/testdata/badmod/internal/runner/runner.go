// Package runner is a deliberately non-conforming worker-pool fixture
// for the silodlint driver tests: a pool whose workers busy-poll a
// shared cursor instead of ranging over a closable channel (goleak),
// and whose results are read without the pool mutex (lockcheck). The
// real pool in the main module's internal/runner does neither.
package runner

import "sync"

// pool fans work across busy-polling workers.
type pool struct {
	mu      sync.Mutex
	next    int
	results []int // guarded by mu
}

// start breaks goleak: each worker loops forever on the shared cursor
// with no done channel, context, or WaitGroup tying it to a waiter.
func (p *pool) start(workers int, run func(i int) int) {
	for k := 0; k < workers; k++ {
		go func() {
			for {
				p.mu.Lock()
				i := p.next
				p.next++
				p.mu.Unlock()
				_ = run(i)
			}
		}()
	}
}

// snapshot breaks lockcheck: reads results without holding mu.
func (p *pool) snapshot() int {
	return len(p.results)
}
