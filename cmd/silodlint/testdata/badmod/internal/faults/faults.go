// Package faults is a deliberately non-conforming fixture for the
// silodlint driver tests: it sits in both the virtual-time and the
// daemon-reachable package lists, and breaks the wallclock, goleak,
// and errflow rules exactly once each.
package faults

import (
	"errors"
	"time"
)

// Stamp breaks the wallclock rule inside internal/faults: fault events
// must fire on virtual time, never the machine clock.
func Stamp() time.Time {
	return time.Now()
}

// Watch breaks goleak: the injector goroutine has no shutdown path.
func Watch(inject func()) {
	go func() {
		for {
			inject()
		}
	}()
}

// Swallow breaks errflow: the schedule-validation error is discarded.
func Swallow() {
	_ = errors.New("infeasible schedule")
}
