// Package policy is the badmod slice for the dataflow analyzers: a
// float sum in map iteration order, a // silod:pure function that
// reads the wall clock, and a // silod:hotpath function that
// allocates.
package policy

import "time"

// RequiredIO sums in map iteration order — the pre-PR-5 form the
// maporder analyzer exists to keep out of the tree.
func RequiredIO(rates map[string]float64) float64 {
	var total float64
	for _, r := range rates {
		total += r
	}
	return total
}

// Score claims purity but consults the wall clock.
//
// silod:pure
func Score(x float64) float64 {
	_ = time.Now()
	return x
}

// Hot claims to be an inner loop but allocates a fresh buffer per
// call.
//
// silod:hotpath
func Hot(n int) []int {
	buf := make([]int, n)
	return buf
}
