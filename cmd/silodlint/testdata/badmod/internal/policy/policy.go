// Package policy is the badmod slice for the dataflow analyzers: a
// float sum in map iteration order, a // silod:pure function that
// reads the wall clock, a // silod:hotpath function that allocates,
// and a stale delta-memo: an IgnoredViewFields declaration vouching
// for a solver that lost its // silod:pure annotation.
package policy

import "time"

// RequiredIO sums in map iteration order — the pre-PR-5 form the
// maporder analyzer exists to keep out of the tree.
func RequiredIO(rates map[string]float64) float64 {
	var total float64
	for _, r := range rates {
		total += r
	}
	return total
}

// Score claims purity but consults the wall clock.
//
// silod:pure
func Score(x float64) float64 {
	_ = time.Now()
	return x
}

// Hot claims to be an inner loop but allocates a fresh buffer per
// call.
//
// silod:hotpath
func Hot(n int) []int {
	buf := make([]int, n)
	return buf
}

// IgnoredViewFields declares a delta-aware solve skip: engines reuse a
// memoized assignment when only the masked fields changed, which is
// byte-identical only while the solver it vouches for stays pure. The
// vouched solver below has no silod:pure annotation — the stale-memo
// shape purecheck exists to catch.
//
// silod:pure-requires: solveDelta
func IgnoredViewFields() uint32 { return 1 }

// solveDelta is the solver the memo rests on; its silod:pure
// annotation was dropped, so the skip above is no longer vouched for.
func solveDelta(x float64) float64 { return x * 2 }
