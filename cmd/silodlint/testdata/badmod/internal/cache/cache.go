// Package cache is a deliberately non-conforming fixture for the
// silodlint driver tests: it sits in a daemon-reachable package path
// and breaks each concurrency-safety rule exactly once.
package cache

import (
	"errors"
	"sync"
)

// counter holds a guarded field for the lockcheck violation.
type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Peek breaks lockcheck: reads n without holding mu.
func (c *counter) Peek() int {
	return c.n
}

type left struct{ mu sync.Mutex }
type right struct{ mu sync.Mutex }

// lr nests left before right; rl inverts it — the lockorder cycle.
func lr(l *left, r *right) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
}

func rl(l *left, r *right) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
}

// spawn breaks goleak: the goroutine has no shutdown path.
func spawn(work func()) {
	go func() {
		for {
			work()
		}
	}()
}

// drop breaks errflow: the error return is discarded.
func drop() {
	_ = errors.New("lost")
}
