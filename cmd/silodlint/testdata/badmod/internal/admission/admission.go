// Package admission is a deliberately non-conforming fixture shaped
// like the serving mode's admission queue: a closed queue-state enum
// with a hole in its switch (exhaust), a wire-decoded load spec sizing
// a buffer unvalidated (inputflow), and a replay root that reaches the
// wall clock through a helper frame (detclose). The package sits
// outside wallclock's path scope, so only the whole-program analyzers
// see the clock leak.
package admission

import "time"

// queueState mirrors the real admission queue's shed states.
// silod:enum
type queueState int

const (
	stateOpen queueState = iota
	stateShedding
	stateFull
)

// retryHint breaks exhaust: stateFull is not covered and there is no
// default, so a saturated queue silently hints the zero value.
func retryHint(s queueState) int {
	switch s {
	case stateOpen:
		return 0
	case stateShedding:
		return 2
	}
	return 0
}

// loadSpec mirrors a load-generator spec: it arrives off the wire.
// silod:untrusted
type loadSpec struct {
	Burst int
}

// preallocate breaks inputflow: the untrusted burst size backs an
// allocation before anything bounds it.
func preallocate(s loadSpec) []int64 {
	return make([]int64, s.Burst)
}

// ReplayStorm is the seeded determinism leak: the replay root never
// reads the clock itself — the leak hides one frame down in the pacing
// helper, which only the whole-program summary pass can see.
// silod:sim-root
func ReplayStorm(spec loadSpec) int {
	total := 0
	for range preallocate(spec) {
		total += pace()
	}
	return total + retryHint(stateOpen)
}

// pace launders the clock access through one more frame.
func pace() int {
	return time.Now().Nanosecond()
}
