// Package sim is a deliberately non-conforming fixture module for the
// silodlint driver tests: it sits in a virtual-time package path and
// uses wall-clock time and ambient randomness.
package sim

import (
	"math/rand"
	"time"
)

// Tick breaks the wallclock rule inside internal/sim.
func Tick() time.Time {
	return time.Now()
}

// Jitter breaks the rngpurity rule outside internal/simrng.
func Jitter() time.Duration {
	return time.Duration(rand.Intn(1000)) * time.Millisecond
}
